(* Kernel suite tests: each kernel compiles, matches BOTH the Val
   interpreter and an independent OCaml reference, and pipelines at its
   predicted rate. *)

open Dfg
module D = Compiler.Driver
module K = Kernels

let check_kernel ?(n = 48) (k : K.kernel) () =
  let st = Random.State.make [| Hashtbl.hash k.K.name |] in
  (* scalar inputs ride along as singleton streams so the interpreter
     oracle sees them; the simulator reads them as load-time constants *)
  let inputs =
    k.K.inputs n st
    @ List.map (fun (name, v) -> (name, [ v ])) k.K.scalar_inputs
  in
  let prog, compiled =
    D.compile_source ~scalar_inputs:k.K.scalar_inputs (k.K.source n)
  in
  Alcotest.(check int)
    "block count" k.K.blocks
    (List.length compiled.Compiler.Program_compile.cp_schemes);
  let result = D.run ~waves:6 compiled ~inputs in
  (* oracle 1: the Val interpreter *)
  D.check_against_oracle prog compiled result ~inputs;
  (* oracle 2: independent OCaml reference *)
  let got =
    List.map Value.to_real (D.output_wave compiled result k.K.output)
  in
  let expected = k.K.reference n inputs in
  Alcotest.(check (list (float 1e-9)))
    "matches OCaml reference" expected got;
  (* predicted steady-state rate *)
  let interval = Sim.Metrics.output_interval result k.K.output in
  let predicted = k.K.predicted_interval n in
  Alcotest.(check bool)
    (Printf.sprintf "interval %.3f within 8%% of predicted %.3f" interval
       predicted)
    true
    (Float.abs (interval -. predicted) /. predicted <= 0.08)

(* every kernel also runs correctly when lowered to pure machine cells
   (control generators, index sources and FIFOs macro-expanded) *)
let test_kernels_macro_expanded () =
  let n = 20 in
  List.iter
    (fun (k : K.kernel) ->
      let st = Random.State.make [| Hashtbl.hash k.K.name + 1 |] in
      let inputs =
        k.K.inputs n st
        @ List.map (fun (name, v) -> (name, [ v ])) k.K.scalar_inputs
      in
      let options =
        { Compiler.Program_compile.default_options with
          Compiler.Program_compile.expand_macros = true }
      in
      let prog, compiled =
        D.compile_source ~options ~scalar_inputs:k.K.scalar_inputs
          (k.K.source n)
      in
      Graph.iter_nodes compiled.Compiler.Program_compile.cp_graph (fun nd ->
          match nd.Graph.op with
          | Opcode.Bool_source _ | Opcode.Iota _ | Opcode.Fifo _ ->
            Alcotest.failf "%s: abstract cell %s survived expansion"
              k.K.name nd.Graph.label
          | _ -> ());
      let result = D.run ~waves:2 compiled ~inputs in
      D.check_against_oracle prog compiled result ~inputs)
    K.all

let test_analysis_longest_path () =
  (* the longest-path analysis agrees with naive balancing levels on an
     acyclic kernel graph *)
  let k = K.find "state_eos" in
  let _, compiled =
    D.compile_source ~scalar_inputs:k.K.scalar_inputs (k.K.source 12)
  in
  let g = compiled.Compiler.Program_compile.cp_graph in
  match Analysis.longest_path_from_sources g with
  | None -> Alcotest.fail "kernel graph should be acyclic"
  | Some dist ->
    let levels = Balance.Balancer.naive_levels g in
    Graph.iter_nodes g (fun nd ->
        Alcotest.(check int)
          (Printf.sprintf "node %d" nd.Graph.id)
          levels.(nd.Graph.id)
          dist.(nd.Graph.id))

let test_tridiag_uses_companion () =
  let k = K.find "tridiag" in
  let _, compiled = D.compile_source (k.K.source 16) in
  Alcotest.(check (option string))
    "companion scheme selected" (Some "for-iter/companion")
    (List.assoc_opt "X" compiled.Compiler.Program_compile.cp_schemes)

let test_kernels_distinct () =
  let names = List.map (fun k -> k.K.name) K.all in
  Alcotest.(check int) "no duplicate kernels"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let suite =
  List.map
    (fun k ->
      Alcotest.test_case ("kernel " ^ k.K.name) `Quick (check_kernel k))
    K.all
  @ [
      Alcotest.test_case "all kernels macro-expanded" `Quick
        test_kernels_macro_expanded;
      Alcotest.test_case "longest path = naive levels" `Quick
        test_analysis_longest_path;
      Alcotest.test_case "tridiag uses companion" `Quick
        test_tridiag_uses_companion;
      Alcotest.test_case "kernel names distinct" `Quick test_kernels_distinct;
    ]
