(* Interpreter tests: the reference semantics that the compiled dataflow
   code must reproduce. *)

open Val_lang

let env = Eval.env_of_bindings

let check_real msg expected v =
  Alcotest.(check (float 1e-9)) msg expected (Eval.to_real v)

let eval src bindings = Eval.eval_expr (env bindings) (Parser.parse_expr src)

let test_arith () =
  check_real "add" 5.0 (eval "2. + 3." []);
  check_real "precedence" 7.0 (eval "1. + 2. * 3." []);
  check_real "div" 2.5 (eval "5. / 2." []);
  (match eval "7 / 2" [] with
  | Eval.VInt 3 -> ()
  | v -> Alcotest.failf "integer division: got %s" (Format.asprintf "%a" Eval.pp_value v));
  check_real "mixed int/real promotes" 4.5 (eval "3. * 1.5" []);
  check_real "int promotes in mixed op" 5.0 (eval "2 + 3." [])

let test_min_max () =
  check_real "min" 1.0 (eval "min(1., 2.)" []);
  check_real "max" 2.0 (eval "max(1., 2.)" []);
  match eval "min(3, 4)" [] with
  | Eval.VInt 3 -> ()
  | _ -> Alcotest.fail "integer min"

let test_bool () =
  let b src = match eval src [] with
    | Eval.VBool b -> b
    | _ -> Alcotest.fail "expected boolean"
  in
  Alcotest.(check bool) "and" false (b "true & false");
  Alcotest.(check bool) "or" true (b "true | false");
  Alcotest.(check bool) "not" true (b "~false");
  Alcotest.(check bool) "lt" true (b "1 < 2");
  Alcotest.(check bool) "ne" true (b "1 ~= 2");
  Alcotest.(check bool) "eq mixed" true (b "2 = 2.")

let test_let_if () =
  check_real "figure 2 expression" ((6. +. 2.) *. (6. -. 3.))
    (eval "let y : real := a * b in (y + 2.) * (y - 3.) endlet"
       [ ("a", Eval.VReal 2.); ("b", Eval.VReal 3.) ]);
  check_real "if true" 1.0 (eval "if 1 < 2 then 1. else 2. endif" []);
  check_real "if false" 2.0 (eval "if 2 < 1 then 1. else 2. endif" []);
  check_real "shadowing"
    12.0
    (eval "let x := 3 in let x := x * 4 in x endlet endlet" [])

let test_select () =
  let c = Eval.varray_of_floats ~lo:0 [ 10.; 20.; 30.; 40. ] in
  check_real "C[i]" 20.0 (eval "C[i]" [ ("C", c); ("i", Eval.VInt 1) ]);
  check_real "C[i+1]" 30.0 (eval "C[i+1]" [ ("C", c); ("i", Eval.VInt 1) ]);
  check_real "C[i-1]" 10.0 (eval "C[i-1]" [ ("C", c); ("i", Eval.VInt 1) ]);
  match eval "C[i+9]" [ ("C", c); ("i", Eval.VInt 1) ] with
  | _ -> Alcotest.fail "expected out-of-range error"
  | exception Eval.Error _ -> ()

(* Example 1 of the paper: oracle computation written directly in OCaml. *)
let example1_oracle ~m b c =
  List.init (m + 2) (fun i ->
      let p =
        if i = 0 || i = m + 1 then List.nth c i
        else
          0.25 *. (List.nth c (i - 1) +. (2. *. List.nth c i)
                   +. List.nth c (i + 1))
      in
      List.nth b i *. (p *. p))

let test_example1 () =
  let m = 6 in
  let b = List.init (m + 2) (fun i -> float_of_int (i + 1)) in
  let c = List.init (m + 2) (fun i -> float_of_int ((i * i) mod 7)) in
  let prog =
    Parser.parse_program
      ({|
param m = 6;
input C : array[real] [0, m+1];
input B : array[real] [0, m+1];
|}
      ^ Test_val_parser.example1_source ^ ";")
  in
  let results =
    Eval.eval_program
      ~inputs:
        [ ("C", Eval.varray_of_floats ~lo:0 c);
          ("B", Eval.varray_of_floats ~lo:0 b) ]
      prog
  in
  let a = List.assoc "A" results in
  let expected = example1_oracle ~m b c in
  List.iter2
    (fun e g -> Alcotest.(check (float 1e-9)) "element" e g)
    expected
    (Eval.floats_of_varray a)

(* Example 2: x_0 = 0, x_i = A_i * x_{i-1} + B_i for i = 1..m-1 (the paper's
   loop appends for i < m and returns on i = m). *)
let example2_oracle ~m a b =
  let x = Array.make m 0. in
  for i = 1 to m - 1 do
    x.(i) <- (List.nth a i *. x.(i - 1)) +. List.nth b i
  done;
  Array.to_list x

let test_example2 () =
  let m = 9 in
  let a = List.init (m + 1) (fun i -> 0.5 +. (0.1 *. float_of_int i)) in
  let b = List.init (m + 1) (fun i -> float_of_int (i mod 3)) in
  let prog =
    Parser.parse_program
      ({|
param m = 9;
input A : array[real] [0, m];
input B : array[real] [0, m];
|}
      ^ Test_val_parser.example2_source ^ ";")
  in
  let results =
    Eval.eval_program
      ~inputs:
        [ ("A", Eval.varray_of_floats ~lo:0 a);
          ("B", Eval.varray_of_floats ~lo:0 b) ]
      prog
  in
  let x = List.assoc "X" results in
  (match x with
  | Eval.VArray { lo; elts } ->
    Alcotest.(check int) "lo" 0 lo;
    Alcotest.(check int) "length" m (Array.length elts)
  | _ -> Alcotest.fail "expected array");
  let expected = example2_oracle ~m a b in
  List.iter2
    (fun e g -> Alcotest.(check (float 1e-9)) "element" e g)
    expected
    (Eval.floats_of_varray x)

(* The combined pipe-structured program of the paper's Figure 3: Example 1
   feeds Example 2. *)
let figure3_source =
  {|
param m = 7;
input C : array[real] [0, m+1];
input B : array[real] [0, m+1];

A : array[real] :=
  forall i in [0, m+1]
    P : real :=
      if (i = 0) | (i = m+1) then C[i]
      else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct
    B[i] * (P * P)
  endall;

X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let P : real := A[i] * T[i-1] + B[i]
    in
      if i < m then
        iter T := T[i: P]; i := i + 1 enditer
      else T
      endif
    endlet
  endfor;
|}

let test_figure3 () =
  let m = 7 in
  let b = List.init (m + 2) (fun i -> 1.0 +. (0.25 *. float_of_int i)) in
  let c = List.init (m + 2) (fun i -> float_of_int ((3 * i) mod 5)) in
  let prog = Parser.parse_program figure3_source in
  let results =
    Eval.eval_program
      ~inputs:
        [ ("C", Eval.varray_of_floats ~lo:0 c);
          ("B", Eval.varray_of_floats ~lo:0 b) ]
      prog
  in
  let a = example1_oracle ~m b c in
  let x = example2_oracle ~m a b in
  List.iter2
    (fun e g -> Alcotest.(check (float 1e-9)) "element" e g)
    x
    (Eval.floats_of_varray (List.assoc "X" results))

let test_forall_2d () =
  let prog =
    Parser.parse_program
      {|
param n = 3;
input G : array[real] [0, n] [0, n];

H : array[real] :=
  forall i in [1, n-1], j in [1, n-1]
  construct
    0.25 * (G[i-1, j] + G[i+1, j] + G[i, j-1] + G[i, j+1])
  endall;
|}
  in
  let g =
    Eval.VGrid
      {
        Eval.lo_i = 0;
        lo_j = 0;
        rows =
          Array.init 4 (fun i ->
              Array.init 4 (fun j -> Eval.VReal (float_of_int ((i * 4) + j))));
      }
  in
  let results = Eval.eval_program ~inputs:[ ("G", g) ] prog in
  match List.assoc "H" results with
  | Eval.VGrid { rows; _ } ->
    (* interior point (1,1): neighbours 1, 9, 4, 6 -> average 5 *)
    Alcotest.(check (float 1e-9)) "H[1,1]" 5.0 (Eval.to_real rows.(0).(0));
    Alcotest.(check (float 1e-9)) "H[2,2]" 10.0 (Eval.to_real rows.(1).(1))
  | _ -> Alcotest.fail "expected grid"

let test_typecheck_rejects () =
  let expect_type_error src =
    let prog = Parser.parse_program src in
    match Typecheck.check_program prog with
    | () -> Alcotest.failf "expected type error"
    | exception Typecheck.Error _ -> ()
  in
  expect_type_error
    {|
input B : array[real] [0, 4];
A : array[real] := forall i in [0, 4] construct B[i] & true endall;
|};
  expect_type_error
    {|
A : array[real] := forall i in [0, 4] construct undefined_name endall;
|};
  expect_type_error
    {|
input B : array[real] [0, 4];
A : array[real] := forall i in [0, 4] construct if B[i] then 1. else 2. endif endall;
|};
  expect_type_error
    {|
input B : array[boolean] [0, 4];
A : array[real] := forall i in [0, 4] construct B[i] endall;
|}

let test_typecheck_accepts () =
  let prog = Parser.parse_program figure3_source in
  Typecheck.check_program prog

(* The interpreter supports general for-iter shapes beyond the compilable
   class: several scalar loop names, nested conditionals, simultaneous
   rebinding semantics. *)
let test_general_foriter_two_scalars () =
  (* fibonacci via two scalars appended into an array *)
  let prog =
    Parser.parse_program
      {|
param n = 10;
input D : array[real] [0, 0];
F : array[integer] :=
  for
    i : integer := 1;
    a : integer := 0;
    b : integer := 1;
    T : array[integer] := [0: 0]
  do
    if i <= n then
      iter T := T[i: b]; a := b; b := a + b; i := i + 1 enditer
    else T
    endif
  endfor;
|}
  in
  let results =
    Eval.eval_program
      ~inputs:[ ("D", Eval.varray_of_floats ~lo:0 [ 0. ]) ]
      prog
  in
  match List.assoc "F" results with
  | Eval.VArray { elts; _ } ->
    (* simultaneous rebinding: a := b and b := a + b both read the OLD a,b *)
    let got =
      Array.to_list
        (Array.map (function Eval.VInt i -> i | _ -> -1) elts)
    in
    Alcotest.(check (list int)) "fibonacci"
      [ 0; 1; 1; 2; 3; 5; 8; 13; 21; 34; 55 ]
      got
  | _ -> Alcotest.fail "expected array"

let test_general_foriter_nested_conditional () =
  let prog =
    Parser.parse_program
      {|
param n = 8;
input D : array[real] [0, 0];
G : array[integer] :=
  for
    i : integer := 1;
    T : array[integer] := [0: 0]
  do
    if i > n then T
    else
      if i - (i / 2) * 2 = 0 then
        iter T := T[i: i * 10]; i := i + 1 enditer
      else
        iter T := T[i: i]; i := i + 1 enditer
      endif
    endif
  endfor;
|}
  in
  let results =
    Eval.eval_program ~inputs:[ ("D", Eval.varray_of_floats ~lo:0 [ 0. ]) ] prog
  in
  match List.assoc "G" results with
  | Eval.VArray { elts; _ } ->
    Alcotest.(check (list int)) "even indexes scaled"
      [ 0; 1; 20; 3; 40; 5; 60; 7; 80 ]
      (Array.to_list
         (Array.map (function Eval.VInt i -> i | _ -> -1) elts))
  | _ -> Alcotest.fail "expected array"

let test_eval_division_semantics () =
  let eval src = Eval.eval_expr (Eval.env_of_bindings []) (Parser.parse_expr src) in
  (match eval "7 / 2" with
  | Eval.VInt 3 -> ()
  | _ -> Alcotest.fail "integer division truncates");
  (match eval "1 / 0" with
  | _ -> Alcotest.fail "expected division-by-zero error"
  | exception Eval.Error _ -> ());
  match eval "1. / 0." with
  | Eval.VReal f -> Alcotest.(check bool) "real div by zero is inf" true (f = infinity)
  | _ -> Alcotest.fail "expected real"

let test_value_equal_grid () =
  let grid rows =
    Eval.VGrid
      { Eval.lo_i = 0; lo_j = 0;
        rows = Array.of_list (List.map (fun r -> Array.of_list (List.map (fun f -> Eval.VReal f) r)) rows) }
  in
  Alcotest.(check bool) "equal grids" true
    (Eval.value_equal (grid [ [ 1.; 2. ] ]) (grid [ [ 1.; 2. ] ]));
  Alcotest.(check bool) "different grids" false
    (Eval.value_equal (grid [ [ 1.; 2. ] ]) (grid [ [ 1.; 3. ] ]))

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "booleans" `Quick test_bool;
    Alcotest.test_case "let and if" `Quick test_let_if;
    Alcotest.test_case "array selection" `Quick test_select;
    Alcotest.test_case "paper example 1 (forall)" `Quick test_example1;
    Alcotest.test_case "paper example 2 (for-iter)" `Quick test_example2;
    Alcotest.test_case "paper figure 3 (pipe program)" `Quick test_figure3;
    Alcotest.test_case "2-D forall" `Quick test_forall_2d;
    Alcotest.test_case "typecheck rejections" `Quick test_typecheck_rejects;
    Alcotest.test_case "typecheck accepts figure 3" `Quick
      test_typecheck_accepts;
    Alcotest.test_case "general for-iter: two scalars" `Quick
      test_general_foriter_two_scalars;
    Alcotest.test_case "general for-iter: nested conditional" `Quick
      test_general_foriter_nested_conditional;
    Alcotest.test_case "division semantics" `Quick
      test_eval_division_semantics;
    Alcotest.test_case "grid equality" `Quick test_value_equal_grid;
  ]
