(* End-to-end compiler tests: every theorem of the paper, checked against
   the Val interpreter (values) and the simulator (rates). *)

open Dfg
module D = Compiler.Driver
module PC = Compiler.Program_compile
module FC = Compiler.Foriter_compile
module R = Compiler.Recurrence

let reals = D.wave_of_floats

let bools xs = List.map (fun b -> Value.Bool b) xs

let rng seed = Random.State.make [| seed |]

let random_floats st n = List.init n (fun _ -> Random.State.float st 2.0 -. 1.0)

let check_floats msg expected got =
  Alcotest.(check (list (float 1e-6)))
    msg
    (List.map Value.to_real expected)
    (List.map Value.to_real got)

let compile_run ?options ?(waves = 4) source inputs =
  let prog, cp = D.compile_source ?options source in
  let result = D.run ~waves cp ~inputs in
  Alcotest.(check bool) "simulation quiescent" true result.Sim.Engine.quiescent;
  (* free-running control/index sources legitimately hold tokens after the
     inputs exhaust, so [stuck] is not asserted empty here; completeness of
     the outputs is enforced by the oracle comparison *)
  D.check_against_oracle prog cp result ~inputs;
  (prog, cp, result)

(* ------------------------------------------------------------------ *)
(* Theorem 1 via simple foralls                                         *)
(* ------------------------------------------------------------------ *)

let test_simple_map () =
  let src =
    {|
param n = 15;
input B : array[real] [0, n];
A : array[real] := forall i in [0, n] construct 2.*B[i] + 1. endall;
|}
  in
  let st = rng 1 in
  let b = random_floats st 16 in
  let _, cp, result = compile_run src [ ("B", reals b) ] in
  let out = D.output_wave cp result "A" in
  check_floats "values" (reals (List.map (fun x -> (2. *. x) +. 1.) b)) out

let test_let_shadowing_compiles () =
  let src =
    {|
param n = 7;
input B : array[real] [0, n];
A : array[real] :=
  forall i in [0, n]
    y : real := B[i] * B[i];
  construct
    let y : real := y + 1. in y * 2. endlet
  endall;
|}
  in
  let st = rng 2 in
  let b = random_floats st 8 in
  let _, cp, result = compile_run src [ ("B", reals b) ] in
  let expected = List.map (fun x -> ((x *. x) +. 1.) *. 2.) b in
  check_floats "values" (reals expected) (D.output_wave cp result "A")

let test_index_variable_use () =
  (* i used arithmetically, not just in conditions *)
  let src =
    {|
param n = 9;
input B : array[real] [0, n];
A : array[real] := forall i in [0, n] construct B[i] * (i + 1) endall;
|}
  in
  let st = rng 3 in
  let b = random_floats st 10 in
  let _, cp, result = compile_run src [ ("B", reals b) ] in
  let expected = List.mapi (fun i x -> x *. float_of_int (i + 1)) b in
  check_floats "values" (reals expected) (D.output_wave cp result "A")

(* Figure 4: array selection with skew *)
let fig4_source m =
  Printf.sprintf
    {|
param m = %d;
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [1, m]
  construct
    0.25 * (C[i-1] + 2.*C[i] + C[i+1])
  endall;
|}
    m

let test_fig4_selection () =
  let m = 20 in
  let st = rng 4 in
  let c = random_floats st (m + 2) in
  let _, cp, result = compile_run (fig4_source m) [ ("C", reals c) ] in
  let nth = List.nth c in
  let expected =
    List.init m (fun k ->
        let i = k + 1 in
        0.25 *. (nth (i - 1) +. (2. *. nth i) +. nth (i + 1)))
  in
  check_floats "values" (reals expected) (D.output_wave cp result "A")

let test_fig4_rate () =
  let m = 64 in
  let c = List.init (m + 2) float_of_int in
  let _, _, result = compile_run ~waves:12 (fig4_source m) [ ("C", reals c) ] in
  (* the pipe is input-paced: m+2 packets in, m out per wave *)
  let expected = 2.0 *. float_of_int (m + 2) /. float_of_int m in
  let interval = Sim.Metrics.output_interval result "A" in
  Alcotest.(check (float 0.1)) "input-limited interval" expected interval

(* Figure 5: conditional with switched operands *)
let fig5_source n =
  Printf.sprintf
    {|
param n = %d;
input C : array[boolean] [0, n];
input A : array[real] [0, n];
input B : array[real] [0, n];
R : array[real] :=
  forall i in [0, n]
  construct
    if C[i] then -(A[i] + B[i]) else 5.*(A[i]*B[i] + 2.) endif
  endall;
|}
    n

let test_fig5_conditional () =
  let n = 31 in
  let st = rng 5 in
  let a = random_floats st (n + 1) and b = random_floats st (n + 1) in
  let c = List.init (n + 1) (fun _ -> Random.State.bool st) in
  let inputs = [ ("C", bools c); ("A", reals a); ("B", reals b) ] in
  let _, cp, result = compile_run (fig5_source n) inputs in
  let expected =
    List.mapi
      (fun i ci ->
        let ai = List.nth a i and bi = List.nth b i in
        if ci then -.(ai +. bi) else 5. *. ((ai *. bi) +. 2.))
      c
  in
  check_floats "values" (reals expected) (D.output_wave cp result "R")

let test_fig5_rate () =
  let n = 63 in
  let st = rng 6 in
  let a = random_floats st (n + 1) and b = random_floats st (n + 1) in
  let c = List.init (n + 1) (fun i -> i mod 3 = 0) in
  let inputs = [ ("C", bools c); ("A", reals a); ("B", reals b) ] in
  let _, _, result = compile_run ~waves:10 (fig5_source n) inputs in
  let interval = Sim.Metrics.output_interval result "R" in
  Alcotest.(check (float 0.1)) "fully pipelined" 2.0 interval

let test_nested_conditional () =
  let src =
    {|
param n = 23;
input A : array[real] [0, n];
R : array[real] :=
  forall i in [0, n]
  construct
    if A[i] < 0. then
      if A[i] < -0.5 then 0. - 1. else A[i] * 2. endif
    else
      if A[i] > 0.5 then 1. else A[i] endif
    endif
  endall;
|}
  in
  let st = rng 7 in
  let a = random_floats st 24 in
  let _, cp, result = compile_run src [ ("A", reals a) ] in
  let expected =
    List.map
      (fun x ->
        if x < 0. then if x < -0.5 then -1. else x *. 2.
        else if x > 0.5 then 1.
        else x)
      a
  in
  check_floats "values" (reals expected) (D.output_wave cp result "R")

(* ------------------------------------------------------------------ *)
(* Theorem 2: Example 1 (Figure 6)                                      *)
(* ------------------------------------------------------------------ *)

let example1_source m =
  Printf.sprintf
    {|
param m = %d;
input C : array[real] [0, m+1];
input B : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real :=
      if (i = 0) | (i = m+1) then C[i]
      else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct
    B[i] * (P * P)
  endall;
|}
    m

let example1_oracle ~m b c =
  List.init (m + 2) (fun i ->
      let p =
        if i = 0 || i = m + 1 then List.nth c i
        else
          0.25
          *. (List.nth c (i - 1) +. (2. *. List.nth c i) +. List.nth c (i + 1))
      in
      List.nth b i *. (p *. p))

let test_example1_values () =
  let m = 17 in
  let st = rng 8 in
  let b = random_floats st (m + 2) and c = random_floats st (m + 2) in
  let inputs = [ ("C", reals c); ("B", reals b) ] in
  let _, cp, result = compile_run (example1_source m) inputs in
  check_floats "values"
    (reals (example1_oracle ~m b c))
    (D.output_wave cp result "A")

let test_example1_rate () =
  let m = 62 in
  let st = rng 9 in
  let b = random_floats st (m + 2) and c = random_floats st (m + 2) in
  let inputs = [ ("C", reals c); ("B", reals b) ] in
  let _, _, result =
    compile_run ~waves:10 (example1_source m) inputs
  in
  (* full range produced and consumed: maximal rate 1/2 *)
  Alcotest.(check (float 0.1)) "fully pipelined" 2.0
    (Sim.Metrics.output_interval result "A")

(* ------------------------------------------------------------------ *)
(* Theorem 3: Example 2 (Figures 7 and 8)                               *)
(* ------------------------------------------------------------------ *)

let example2_source m =
  Printf.sprintf
    {|
param m = %d;
input A : array[real] [0, m];
input B : array[real] [0, m];
X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let P : real := A[i] * T[i-1] + B[i]
    in
      if i < m then
        iter T := T[i: P]; i := i + 1 enditer
      else T
      endif
    endlet
  endfor;
|}
    m

let example2_oracle ~m a b =
  let x = Array.make m 0. in
  for i = 1 to m - 1 do
    x.(i) <- (List.nth a i *. x.(i - 1)) +. List.nth b i
  done;
  Array.to_list x

let options_with scheme =
  { PC.default_options with PC.scheme }

let test_example2_todd () =
  let m = 12 in
  let st = rng 10 in
  let a = random_floats st (m + 1) and b = random_floats st (m + 1) in
  let inputs = [ ("A", reals a); ("B", reals b) ] in
  let _, cp, result =
    compile_run ~options:(options_with FC.Todd) (example2_source m) inputs
  in
  check_floats "values"
    (reals (example2_oracle ~m a b))
    (D.output_wave cp result "X")

let test_example2_companion () =
  let m = 12 in
  let st = rng 11 in
  let a = random_floats st (m + 1) and b = random_floats st (m + 1) in
  let inputs = [ ("A", reals a); ("B", reals b) ] in
  let prog, cp = D.compile_source (example2_source m) in
  Alcotest.(check (option string))
    "auto picks the companion scheme" (Some "for-iter/companion")
    (List.assoc_opt "X" cp.PC.cp_schemes);
  let result = D.run ~waves:4 cp ~inputs in
  D.check_against_oracle prog cp result ~inputs;
  check_floats "values"
    (reals (example2_oracle ~m a b))
    (D.output_wave cp result "X")

(* Rate comparison on an input-matched loop so the output can reach the
   maximal rate: Todd is limited to ~1/3, the companion scheme restores
   ~1/2 (the paper's Figure 7 vs Figure 8). *)
let loop_rate scheme =
  let m = 96 in
  let src = example2_source m in
  let st = rng 12 in
  let a = List.init (m + 1) (fun _ -> Random.State.float st 0.5) in
  let b = random_floats st (m + 1) in
  let inputs = [ ("A", reals a); ("B", reals b) ] in
  let _, _, result =
    compile_run ~options:(options_with scheme) ~waves:10 src inputs
  in
  Sim.Metrics.output_interval result "X"

let test_todd_vs_companion_rate () =
  let todd = loop_rate FC.Todd in
  let companion = loop_rate FC.Companion in
  Alcotest.(check bool)
    (Printf.sprintf "todd interval %.2f ~ 3" todd)
    true
    (todd > 2.6 && todd < 3.4);
  Alcotest.(check bool)
    (Printf.sprintf "companion interval %.2f ~ 2" companion)
    true
    (companion > 1.9 && companion < 2.4)

(* non-affine recurrence: no companion function; Auto falls back to Todd *)
(* a data-dependent conditional around the accumulator: no companion
   function (If over acc), so Todd's scheme with dynamic switches inside
   the feedback loop *)
let test_conditional_recurrence () =
  let m = 11 in
  let src =
    Printf.sprintf
      {|
param m = %d;
input B : array[real] [0, m];
X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let P : real :=
      if B[i] > 0. then T[i-1] + B[i] else T[i-1] * 0.5 endif
    in
      if i < m then iter T := T[i: P]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}
      m
  in
  let st = rng 77 in
  let b = random_floats st (m + 1) in
  let inputs = [ ("B", reals b) ] in
  let prog, cp = D.compile_source src in
  Alcotest.(check (option string))
    "falls back to Todd" (Some "for-iter/todd")
    (List.assoc_opt "X" cp.PC.cp_schemes);
  let result = D.run ~waves:3 cp ~inputs in
  D.check_against_oracle prog cp result ~inputs;
  let x = Array.make m 0. in
  for i = 1 to m - 1 do
    let bi = List.nth b i in
    x.(i) <- (if bi > 0. then x.(i - 1) +. bi else x.(i - 1) *. 0.5)
  done;
  check_floats "values" (reals (Array.to_list x)) (D.output_wave cp result "X")

let test_nonaffine_fallback () =
  let m = 10 in
  let src =
    Printf.sprintf
      {|
param m = %d;
input A : array[real] [0, m];
input B : array[real] [0, m];
X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let P : real := max(T[i-1] + A[i], B[i])
    in
      if i < m then
        iter T := T[i: P]; i := i + 1 enditer
      else T
      endif
    endlet
  endfor;
|}
      m
  in
  let st = rng 13 in
  let a = random_floats st (m + 1) and b = random_floats st (m + 1) in
  let inputs = [ ("A", reals a); ("B", reals b) ] in
  let prog, cp = D.compile_source src in
  Alcotest.(check (option string))
    "falls back to Todd" (Some "for-iter/todd")
    (List.assoc_opt "X" cp.PC.cp_schemes);
  let result = D.run ~waves:3 cp ~inputs in
  D.check_against_oracle prog cp result ~inputs;
  let x = Array.make m 0. in
  for i = 1 to m - 1 do
    x.(i) <- Float.max (x.(i - 1) +. List.nth a i) (List.nth b i)
  done;
  check_floats "values"
    (reals (Array.to_list x))
    (D.output_wave cp result "X")

(* ------------------------------------------------------------------ *)
(* Theorem 4: the Figure 3 pipe-structured program                      *)
(* ------------------------------------------------------------------ *)

let fig3_source m =
  Printf.sprintf
    {|
param m = %d;
input C : array[real] [0, m+1];
input B : array[real] [0, m+1];

A : array[real] :=
  forall i in [0, m+1]
    P : real :=
      if (i = 0) | (i = m+1) then C[i]
      else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct
    B[i] * (P * P)
  endall;

X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let P : real := A[i] * T[i-1] + B[i]
    in
      if i < m then
        iter T := T[i: P]; i := i + 1 enditer
      else T
      endif
    endlet
  endfor;
|}
    m

let test_fig3_program () =
  let m = 14 in
  let st = rng 14 in
  let b = random_floats st (m + 2) and c = random_floats st (m + 2) in
  let inputs = [ ("C", reals c); ("B", reals b) ] in
  let _, cp, result = compile_run (fig3_source m) inputs in
  (* the oracle check inside compile_run already validated both A and X *)
  let a = example1_oracle ~m b c in
  let x = Array.make m 0. in
  for i = 1 to m - 1 do
    x.(i) <- (List.nth a i *. x.(i - 1)) +. List.nth b i
  done;
  check_floats "X" (reals (Array.to_list x)) (D.output_wave cp result "X")

let test_fig3_rate () =
  let m = 48 in
  let st = rng 15 in
  let b = random_floats st (m + 2)
  and c = List.init (m + 2) (fun _ -> Random.State.float st 0.5) in
  let inputs = [ ("C", reals c); ("B", reals b) ] in
  let _, _, result = compile_run ~waves:10 (fig3_source m) inputs in
  (* inputs are m+2 per wave, X is m per wave: the end-to-end interval is
     input-limited at 2(m+2)/m *)
  let expected = 2.0 *. float_of_int (m + 2) /. float_of_int m in
  Alcotest.(check (float 0.15)) "end-to-end interval" expected
    (Sim.Metrics.output_interval result "X")

(* ------------------------------------------------------------------ *)
(* 2-D forall (the paper's multi-dimension remark)                      *)
(* ------------------------------------------------------------------ *)

let test_forall_2d () =
  let n = 7 in
  let src =
    Printf.sprintf
      {|
param n = %d;
input G : array[real] [0, n] [0, n];
H : array[real] :=
  forall i in [1, n-1], j in [1, n-1]
  construct
    0.25 * (G[i-1, j] + G[i+1, j] + G[i, j-1] + G[i, j+1])
  endall;
|}
      n
  in
  let st = rng 16 in
  let g = List.init ((n + 1) * (n + 1)) (fun _ -> Random.State.float st 1.0) in
  let inputs = [ ("G", reals g) ] in
  let _, cp, result = compile_run src inputs in
  let at i j = List.nth g ((i * (n + 1)) + j) in
  let expected =
    List.concat
      (List.init (n - 1) (fun r ->
           List.init (n - 1) (fun c ->
               let i = r + 1 and j = c + 1 in
               0.25 *. (at (i - 1) j +. at (i + 1) j +. at i (j - 1) +. at i (j + 1)))))
  in
  check_floats "grid values" (reals expected) (D.output_wave cp result "H")

(* ------------------------------------------------------------------ *)
(* Balancing strategies and macro expansion end-to-end                  *)
(* ------------------------------------------------------------------ *)

let test_balancing_strategies () =
  let m = 10 in
  let st = rng 17 in
  let b = random_floats st (m + 2) and c = random_floats st (m + 2) in
  let inputs = [ ("C", reals c); ("B", reals b) ] in
  List.iter
    (fun balance ->
      let options = { PC.default_options with PC.balance } in
      let _, cp, result = compile_run ~options (fig3_source m) inputs in
      ignore cp;
      ignore result)
    [ `Naive; `Reduced; `Optimal ]

let test_unbalanced_still_correct () =
  (* without balancing, values stay correct (elasticity of ports); only
     throughput suffers *)
  let m = 8 in
  let st = rng 18 in
  let b = random_floats st (m + 2) and c = random_floats st (m + 2) in
  let inputs = [ ("C", reals c); ("B", reals b) ] in
  let options = { PC.default_options with PC.balance = `None } in
  let prog, cp = D.compile_source ~options (example1_source m) in
  let result = D.run ~waves:2 cp ~inputs in
  D.check_against_oracle prog cp result ~inputs

let test_macro_expanded_program () =
  let m = 12 in
  let st = rng 19 in
  let b = random_floats st (m + 2) and c = random_floats st (m + 2) in
  let inputs = [ ("C", reals c); ("B", reals b) ] in
  let options = { PC.default_options with PC.expand_macros = true } in
  let prog, cp = D.compile_source ~options (fig3_source m) in
  (* pure machine code: no abstract sources remain *)
  Graph.iter_nodes cp.PC.cp_graph (fun n ->
      match n.Graph.op with
      | Opcode.Bool_source _ | Opcode.Iota _ | Opcode.Fifo _ ->
        Alcotest.failf "abstract node %s survived expansion" n.Graph.label
      | _ -> ());
  let result = D.run ~waves:3 cp ~inputs in
  D.check_against_oracle prog cp result ~inputs

(* ------------------------------------------------------------------ *)
(* Recurrence analysis                                                  *)
(* ------------------------------------------------------------------ *)

let parse_expr = Val_lang.Parser.parse_expr

let test_recurrence_analysis () =
  let affine src =
    match R.analyze ~acc:"T" ~elt:Val_lang.Ast.Treal (parse_expr src) with
    | R.Affine { coef; shift } ->
      (Val_lang.Pretty.expr_to_string coef, Val_lang.Pretty.expr_to_string shift)
    | R.Not_affine why -> Alcotest.failf "unexpectedly not affine: %s" why
  in
  let not_affine src =
    match R.analyze ~acc:"T" ~elt:Val_lang.Ast.Treal (parse_expr src) with
    | R.Affine _ -> Alcotest.failf "unexpectedly affine: %s" src
    | R.Not_affine _ -> ()
  in
  Alcotest.(check (pair string string))
    "paper example" ("A[i]", "B[i]")
    (affine "A[i] * T[i-1] + B[i]");
  Alcotest.(check (pair string string))
    "plain copy" ("1.", "0.")
    (affine "T[i-1]");
  Alcotest.(check (pair string string))
    "sum" ("1.", "B[i]")
    (affine "T[i-1] + B[i]");
  Alcotest.(check (pair string string))
    "let-inlined" ("A[i]", "B[i]")
    (affine "let P : real := A[i] in P * T[i-1] + B[i] endlet");
  Alcotest.(check (pair string string))
    "negated" ("(-A[i])", "B[i]")
    (affine "B[i] - A[i] * T[i-1]");
  not_affine "T[i-1] * T[i-1]";
  not_affine "max(T[i-1], B[i])";
  not_affine "if T[i-1] < 0. then 1. else 2. endif";
  not_affine "B[i] / T[i-1]"

let test_companion_function () =
  (* associativity of G on sampled values *)
  let st = rng 20 in
  for _ = 1 to 100 do
    let pair () = (Random.State.float st 2. -. 1., Random.State.float st 2. -. 1.) in
    let a = pair () and b = pair () and c = pair () in
    let g = R.companion_apply in
    let x1, y1 = g (g a b) c and x2, y2 = g a (g b c) in
    Alcotest.(check (float 1e-9)) "assoc fst" x1 x2;
    Alcotest.(check (float 1e-9)) "assoc snd" y1 y2
  done;
  (* and the defining property F(a, F(b, x)) = F(G(a,b), x) *)
  for _ = 1 to 100 do
    let f (p, q) x = (p *. x) +. q in
    let a = (Random.State.float st 1., Random.State.float st 1.) in
    let b = (Random.State.float st 1., Random.State.float st 1.) in
    let x = Random.State.float st 10. in
    Alcotest.(check (float 1e-9))
      "companion property"
      (f a (f b x))
      (f (R.companion_apply a b) x)
  done

let suite =
  [
    Alcotest.test_case "simple map forall" `Quick test_simple_map;
    Alcotest.test_case "let shadowing" `Quick test_let_shadowing_compiles;
    Alcotest.test_case "index variable arithmetic" `Quick
      test_index_variable_use;
    Alcotest.test_case "figure 4: selection values" `Quick
      test_fig4_selection;
    Alcotest.test_case "figure 4: rate" `Quick test_fig4_rate;
    Alcotest.test_case "figure 5: conditional values" `Quick
      test_fig5_conditional;
    Alcotest.test_case "figure 5: rate" `Quick test_fig5_rate;
    Alcotest.test_case "nested conditionals" `Quick test_nested_conditional;
    Alcotest.test_case "example 1 values (thm 2)" `Quick
      test_example1_values;
    Alcotest.test_case "example 1 rate" `Quick test_example1_rate;
    Alcotest.test_case "example 2 via Todd" `Quick test_example2_todd;
    Alcotest.test_case "example 2 via companion (thm 3)" `Quick
      test_example2_companion;
    Alcotest.test_case "todd 1/3 vs companion 1/2" `Quick
      test_todd_vs_companion_rate;
    Alcotest.test_case "non-affine falls back to Todd" `Quick
      test_nonaffine_fallback;
    Alcotest.test_case "conditional recurrence (dynamic arms in loop)"
      `Quick test_conditional_recurrence;
    Alcotest.test_case "figure 3 program (thm 4)" `Quick test_fig3_program;
    Alcotest.test_case "figure 3 rate" `Quick test_fig3_rate;
    Alcotest.test_case "2-D forall" `Quick test_forall_2d;
    Alcotest.test_case "balancing strategies" `Quick
      test_balancing_strategies;
    Alcotest.test_case "unbalanced still correct" `Quick
      test_unbalanced_still_correct;
    Alcotest.test_case "macro-expanded program" `Quick
      test_macro_expanded_program;
    Alcotest.test_case "recurrence analysis" `Quick test_recurrence_analysis;
    Alcotest.test_case "companion function properties" `Quick
      test_companion_function;
  ]
