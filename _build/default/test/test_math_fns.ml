(* Math intrinsics (sqrt/abs/exp/ln/sin/cos) through the full stack:
   parse, interpret, compile, simulate, serialize. *)

open Dfg
module A = Val_lang.Ast
module D = Compiler.Driver

let test_parse () =
  (match Val_lang.Parser.parse_expr "sqrt(abs(x))" with
  | A.Unop (A.Fn A.Sqrt, A.Unop (A.Fn A.Abs, A.Var "x")) -> ()
  | _ -> Alcotest.fail "sqrt(abs(x))");
  match Val_lang.Parser.parse_expr "exp(ln(sin(cos(1.))))" with
  | A.Unop (A.Fn A.Exp, A.Unop (A.Fn A.Ln, A.Unop (A.Fn A.Sin, A.Unop (A.Fn A.Cos, A.Real_lit 1.))))
    -> ()
  | _ -> Alcotest.fail "nested intrinsics"

let test_eval () =
  let eval src bindings =
    Val_lang.Eval.to_real
      (Val_lang.Eval.eval_expr
         (Val_lang.Eval.env_of_bindings bindings)
         (Val_lang.Parser.parse_expr src))
  in
  Alcotest.(check (float 1e-12)) "sqrt" 3.0 (eval "sqrt(9.)" []);
  Alcotest.(check (float 1e-12)) "abs" 2.5 (eval "abs(0. - 2.5)" []);
  Alcotest.(check (float 1e-12)) "exp(0)" 1.0 (eval "exp(0.)" []);
  Alcotest.(check (float 1e-12)) "ln(e)" 1.0 (eval "ln(exp(1.))" []);
  Alcotest.(check (float 1e-12)) "sin(0)" 0.0 (eval "sin(0.)" []);
  Alcotest.(check (float 1e-12)) "cos(0)" 1.0 (eval "cos(0.)" []);
  (* abs keeps integers integral *)
  match
    Val_lang.Eval.eval_expr
      (Val_lang.Eval.env_of_bindings [])
      (Val_lang.Parser.parse_expr "abs(0 - 3)")
  with
  | Val_lang.Eval.VInt 3 -> ()
  | _ -> Alcotest.fail "abs of int should stay int"

let test_pretty_roundtrip () =
  let e = Val_lang.Parser.parse_expr "sqrt(x * x + y * y)" in
  let e' = Val_lang.Parser.parse_expr (Val_lang.Pretty.expr_to_string e) in
  Alcotest.(check bool) "round trip" true (e = e')

let test_compiled_pipeline () =
  (* LFK22-style Planckian-ish kernel with exp and sqrt *)
  let n = 40 in
  let src =
    Printf.sprintf
      {|
param n = %d;
input U : array[real] [0, n];
input V : array[real] [0, n];
W : array[real] :=
  forall i in [0, n]
  construct
    sqrt(abs(U[i])) / (exp(V[i]) + 1.)
  endall;
|}
      n
  in
  let st = Random.State.make [| 31 |] in
  let wave () =
    List.init (n + 1) (fun _ -> Random.State.float st 2.0 -. 1.0)
  in
  let u = wave () and v = wave () in
  let inputs = [ ("U", D.wave_of_floats u); ("V", D.wave_of_floats v) ] in
  let prog, cp = D.compile_source src in
  let result = D.run ~waves:6 cp ~inputs in
  D.check_against_oracle prog cp result ~inputs;
  let expected =
    List.map2 (fun a b -> sqrt (Float.abs a) /. (exp b +. 1.)) u v
  in
  Alcotest.(check (list (float 1e-12)))
    "values" expected
    (List.map Value.to_real (D.output_wave cp result "W"));
  Alcotest.(check (float 0.05)) "fully pipelined" 2.0
    (Sim.Metrics.output_interval result "W")

let test_constant_folding () =
  (* constant math folds at compile time: no Math cell should remain *)
  let src =
    {|
param n = 7;
input U : array[real] [0, n];
W : array[real] := forall i in [0, n] construct U[i] * sqrt(4.) endall;
|}
  in
  let _, cp = D.compile_source src in
  Graph.iter_nodes cp.Compiler.Program_compile.cp_graph (fun node ->
      match node.Graph.op with
      | Opcode.Math _ -> Alcotest.fail "sqrt(4.) should have folded"
      | _ -> ())

let test_serialize_math () =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let s = Graph.add g (Opcode.Math Opcode.Sqrt) [| Graph.In_arc |] in
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:s ~port:0;
  Graph.connect g ~src:s ~dst:out ~port:0;
  let g' = Text.of_string (Text.to_string g) in
  match (Graph.node g' 1).Graph.op with
  | Opcode.Math Opcode.Sqrt -> ()
  | _ -> Alcotest.fail "SQRT did not round trip"

let test_typecheck () =
  let expect_error src =
    match
      Val_lang.Typecheck.check_expr ~scalars:[ ("b", A.Tbool) ] ~arrays:[]
        (Val_lang.Parser.parse_expr src)
    with
    | _ -> Alcotest.failf "expected type error for %s" src
    | exception Val_lang.Typecheck.Error _ -> ()
  in
  expect_error "sqrt(b)";
  expect_error "ln(b)";
  Alcotest.(check bool) "sqrt of real is real" true
    (Val_lang.Typecheck.check_expr ~scalars:[ ("x", A.Treal) ] ~arrays:[]
       (Val_lang.Parser.parse_expr "sqrt(x)")
    = A.Treal);
  Alcotest.(check bool) "abs of int is int" true
    (Val_lang.Typecheck.check_expr ~scalars:[ ("k", A.Tint) ] ~arrays:[]
       (Val_lang.Parser.parse_expr "abs(k)")
    = A.Tint)

let suite =
  [
    Alcotest.test_case "parse intrinsics" `Quick test_parse;
    Alcotest.test_case "interpret intrinsics" `Quick test_eval;
    Alcotest.test_case "pretty round trip" `Quick test_pretty_roundtrip;
    Alcotest.test_case "compiled kernel with sqrt/exp" `Quick
      test_compiled_pipeline;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "serialization" `Quick test_serialize_math;
    Alcotest.test_case "typing" `Quick test_typecheck;
  ]
