(* CSE tests: duplicated subexpressions across blocks are merged, values
   are preserved, and full pipelining is retained. *)

open Dfg
module D = Compiler.Driver
module PC = Compiler.Program_compile

(* two blocks computing overlapping windows and identical subexpressions *)
let source m =
  Printf.sprintf
    {|
param m = %d;
input C : array[real] [0, m+1];

S : array[real] :=
  forall i in [1, m]
  construct 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endall;

T : array[real] :=
  forall i in [1, m]
  construct 0.5 * (C[i-1] + 2.*C[i] + C[i+1]) endall;
|}
    m

let compile ~cse m =
  let options = { PC.default_options with PC.cse } in
  D.compile_source ~options (source m)

let test_reduces_cells () =
  let m = 16 in
  let _, plain = compile ~cse:false m in
  let _, optimized = compile ~cse:true m in
  let n1 = Graph.node_count plain.PC.cp_graph in
  let n2 = Graph.node_count optimized.PC.cp_graph in
  Alcotest.(check bool)
    (Printf.sprintf "CSE shrinks the graph (%d -> %d)" n1 n2)
    true (n2 < n1)

let test_values_preserved () =
  let m = 12 in
  let st = Random.State.make [| 21 |] in
  let inputs =
    [ ("C",
       List.init (m + 2) (fun _ -> Value.Real (Random.State.float st 1.0))) ]
  in
  let run cse =
    let prog, cp = compile ~cse m in
    let result = D.run ~waves:3 cp ~inputs in
    D.check_against_oracle prog cp result ~inputs;
    ( List.map Value.to_real (D.output_wave cp result "S"),
      List.map Value.to_real (D.output_wave cp result "T") )
  in
  let s1, t1 = run false and s2, t2 = run true in
  Alcotest.(check (list (float 1e-12))) "S identical" s1 s2;
  Alcotest.(check (list (float 1e-12))) "T identical" t1 t2

let test_rate_preserved () =
  let m = 62 in
  let st = Random.State.make [| 22 |] in
  let inputs =
    [ ("C",
       List.init (m + 2) (fun _ -> Value.Real (Random.State.float st 1.0))) ]
  in
  let _, cp = compile ~cse:true m in
  let result = D.run ~waves:8 cp ~inputs in
  let predicted = 2.0 *. float_of_int (m + 2) /. float_of_int m in
  Alcotest.(check (float 0.1)) "still input-limited pipelined" predicted
    (Sim.Metrics.output_interval result "S")

let test_idempotent () =
  let _, cp = compile ~cse:true 10 in
  Alcotest.(check int) "second pass removes nothing" 0
    (Optimize.cse_stats cp.PC.cp_graph)

let test_loops_untouched () =
  (* for-iter rings must not be merged even when two identical loops
     exist *)
  let source =
    {|
param m = 9;
input A : array[real] [0, m];
input B : array[real] [0, m];

X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0]
  do
    let P : real := A[i] * T[i-1] + B[i]
    in if i < m then iter T := T[i: P]; i := i + 1 enditer else T endif
    endlet
  endfor;

Y : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0]
  do
    let P : real := A[i] * T[i-1] + B[i]
    in if i < m then iter T := T[i: P]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}
  in
  let prog, cp = D.compile_source source in
  let st = Random.State.make [| 23 |] in
  let wave () =
    List.init 10 (fun _ -> Value.Real (Random.State.float st 0.8))
  in
  let inputs = [ ("A", wave ()); ("B", wave ()) ] in
  let result = D.run ~waves:3 cp ~inputs in
  D.check_against_oracle prog cp result ~inputs;
  Alcotest.(check (list (float 1e-12)))
    "identical loops produce identical streams"
    (List.map Value.to_real (D.output_wave cp result "X"))
    (List.map Value.to_real (D.output_wave cp result "Y"))

let suite =
  [
    Alcotest.test_case "CSE reduces cells" `Quick test_reduces_cells;
    Alcotest.test_case "CSE preserves values" `Quick test_values_preserved;
    Alcotest.test_case "CSE preserves rate" `Quick test_rate_preserved;
    Alcotest.test_case "CSE is idempotent" `Quick test_idempotent;
    Alcotest.test_case "feedback loops untouched" `Quick test_loops_untouched;
  ]
