(* Classifier tests: the paper's class definitions (Sections 4-7), both
   acceptance (with correct normalization) and rejection with the right
   reason. *)

module A = Val_lang.Ast
module C = Val_lang.Classify
module P = Val_lang.Parser

let classify src = C.classify_program (P.parse_program src)

let expect_rejected ?contains src =
  match classify src with
  | _ -> Alcotest.failf "expected Not_in_class for:\n%s" src
  | exception C.Not_in_class msg -> (
    match contains with
    | None -> ()
    | Some fragment ->
      let found =
        let flen = String.length fragment in
        let rec scan i =
          i + flen <= String.length msg
          && (String.sub msg i flen = fragment || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "message %S mentions %S" msg fragment)
        true found)

(* ------------------------------------------------------------------ *)
(* forall acceptance                                                    *)
(* ------------------------------------------------------------------ *)

let test_forall_normalization () =
  let pp =
    classify
      {|
param m = 5;
input B : array[real] [0, m+1];
A : array[real] :=
  forall i in [1, m] construct B[i+1] * 2. endall;
|}
  in
  match pp.C.pp_blocks with
  | [ C.Pb_forall pf ] ->
    Alcotest.(check string) "name" "A" pf.C.pf_name;
    Alcotest.(check bool) "range" true (pf.C.pf_ranges = [ ("i", 1, 5) ]);
    Alcotest.(check bool) "element type" true (pf.C.pf_elt = A.Treal)
  | _ -> Alcotest.fail "expected one forall block"

let test_shape_of_blocks () =
  let pp =
    classify
      {|
param m = 4;
input B : array[real] [0, m];
A : array[real] := forall i in [0, m] construct B[i] endall;
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0]
  do
    let p : real := A[i] + T[i-1]
    in if i < m then iter T := T[i: p]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}
  in
  match pp.C.pp_blocks with
  | [ fa; fi ] ->
    Alcotest.(check bool) "forall shape" true
      ((C.block_shape fa).C.sh_ranges = [ (0, 4) ]);
    Alcotest.(check bool) "foriter shape includes init index" true
      ((C.block_shape fi).C.sh_ranges = [ (0, 3) ])
  | _ -> Alcotest.fail "expected two blocks"

(* ------------------------------------------------------------------ *)
(* for-iter loop-bound orientations                                     *)
(* ------------------------------------------------------------------ *)

let foriter_with ~cond ~flip src_cond_desc =
  ignore src_cond_desc;
  Printf.sprintf
    {|
param m = 6;
input B : array[real] [0, m+1];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0]
  do
    let p : real := B[i] + T[i-1]
    in %s
    endlet
  endfor;
|}
    (if flip then
       Printf.sprintf
         "if %s then T else iter T := T[i: p]; i := i + 1 enditer endif" cond
     else
       Printf.sprintf
         "if %s then iter T := T[i: p]; i := i + 1 enditer else T endif" cond)

let last_of src =
  match (classify src).C.pp_blocks with
  | [ C.Pb_foriter pi ] -> (pi.C.pi_first, pi.C.pi_last, pi.C.pi_init_index)
  | _ -> Alcotest.fail "expected a for-iter block"

let test_bound_orientations () =
  let check desc cond flip expected_last =
    let src = foriter_with ~cond ~flip desc in
    let first, last, init = last_of src in
    Alcotest.(check int) (desc ^ ": first") 1 first;
    Alcotest.(check int) (desc ^ ": last") expected_last last;
    Alcotest.(check int) (desc ^ ": init index") 0 init
  in
  check "i < m (continue-then)" "i < m" false 5;
  check "i <= m (continue-then)" "i <= m" false 6;
  check "m > i (continue-then)" "m > i" false 5;
  check "m >= i (continue-then)" "m >= i" false 6;
  check "i ~= m (continue-then)" "i ~= m" false 5;
  check "i >= m (continue-else)" "i >= m" true 5;
  check "i > m (continue-else)" "i > m" true 6;
  check "i = m (continue-else)" "i = m" true 5

(* ------------------------------------------------------------------ *)
(* rejections                                                           *)
(* ------------------------------------------------------------------ *)

let test_reject_nested_forall () =
  (* nesting is excluded by the grammar itself: a forall body is an
     expression, and forall is not an expression *)
  match
    P.parse_program
      {|
input B : array[real] [0, 4];
A : array[real] :=
  forall i in [0, 4] construct forall j in [0, 4] construct 1. endall endall;
|}
  with
  | _ -> Alcotest.fail "nested forall should not parse"
  | exception P.Parse_error _ -> ()

let test_reject_constant_subscript () =
  expect_rejected ~contains:"constant subscript"
    {|
input B : array[real] [0, 4];
A : array[real] := forall i in [0, 4] construct B[0] + B[i] endall;
|}

let test_reject_non_constant_range () =
  (* range bounds must be compile-time constants; an unbound name fails *)
  expect_rejected
    {|
input B : array[real] [0, 9];
A : array[real] := forall i in [0, k] construct B[i] endall;
|}

let test_reject_empty_range () =
  expect_rejected ~contains:"empty"
    {|
input B : array[real] [0, 9];
A : array[real] := forall i in [5, 3] construct B[i] endall;
|}

let test_reject_second_order_recurrence () =
  expect_rejected ~contains:"T[i-1]"
    {|
param m = 6;
input B : array[real] [0, m];
X : array[real] :=
  for i : integer := 2; T : array[real] := [1: 0]
  do
    let p : real := T[i-2] + B[i]
    in if i < m then iter T := T[i: p]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}

let test_reject_nonunit_counter_step () =
  expect_rejected ~contains:"advance by exactly 1"
    {|
param m = 6;
input B : array[real] [0, m];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0]
  do
    let p : real := T[i-1] + B[i]
    in if i < m then iter T := T[i: p]; i := i + 2 enditer else T endif
    endlet
  endfor;
|}

let test_reject_wrong_append_index () =
  expect_rejected ~contains:"append index"
    {|
param m = 6;
input B : array[real] [0, m+1];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0]
  do
    let p : real := T[i-1] + B[i]
    in if i < m then iter T := T[i+1: p]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}

let test_reject_result_not_acc () =
  expect_rejected ~contains:"terminate with the accumulated array"
    {|
param m = 6;
input B : array[real] [0, m];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0]
  do
    let p : real := T[i-1] + B[i]
    in if i < m then iter T := T[i: p]; i := i + 1 enditer else B[i] endif
    endlet
  endfor;
|}

let test_reject_gap_init_index () =
  expect_rejected ~contains:"counter start - 1"
    {|
param m = 6;
input B : array[real] [0, m];
X : array[real] :=
  for i : integer := 3; T : array[real] := [0: 0]
  do
    let p : real := T[i-1] + B[i]
    in if i < m then iter T := T[i: p]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}

let test_reject_zero_iterations () =
  expect_rejected ~contains:"no iterations"
    {|
param m = 6;
input B : array[real] [0, m];
X : array[real] :=
  for i : integer := 9; T : array[real] := [8: 0]
  do
    let p : real := T[i-1] + B[i]
    in if i < m then iter T := T[i: p]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}

let test_reject_block_uses_later_block () =
  (* define-before-use: the flow dependency graph is acyclic *)
  expect_rejected
    {|
param m = 4;
input B : array[real] [0, m];
A : array[real] := forall i in [0, m] construct Z[i] + B[i] endall;
Z : array[real] := forall i in [0, m] construct B[i] endall;
|}

let test_reject_scalar_block () =
  expect_rejected ~contains:"must define an array"
    {|
input B : array[real] [0, 4];
A : real := forall i in [0, 4] construct B[i] endall;
|}

let test_reject_three_ranges () =
  expect_rejected ~contains:"one or two index ranges"
    {|
input G : array[real] [0, 3] [0, 3];
H : array[real] :=
  forall i in [0, 1], j in [0, 1], k in [0, 1] construct 1. endall;
|}

let test_reject_2d_wrong_order () =
  expect_rejected ~contains:"declaration order"
    {|
param n = 4;
input G : array[real] [0, n] [0, n];
H : array[real] :=
  forall i in [1, n-1], j in [1, n-1] construct G[j, i] endall;
|}

let test_primitive_expr_checker () =
  let prim src =
    C.is_primitive_expr ~index_vars:[ "i" ] ~scalars:[ "q" ]
      ~arrays:[ "B" ] (P.parse_expr src)
  in
  Alcotest.(check bool) "arith over selects" true (prim "B[i+1] * q + 1.");
  Alcotest.(check bool) "let and if" true
    (prim "let y := B[i] in if y < 0. then -(y) else y endif endlet");
  Alcotest.(check bool) "bare array" false (prim "B + 1.");
  Alcotest.(check bool) "unknown name" false (prim "mystery");
  Alcotest.(check bool) "non-index subscript" false (prim "B[q+1]")

let test_array_references () =
  let refs =
    C.array_references
      (P.parse_expr "B[i-1] + let y := C[i+2] in y * B[i] endlet")
  in
  Alcotest.(check bool) "collects all selects" true
    (refs = [ ("B", [ -1 ]); ("C", [ 2 ]); ("B", [ 0 ]) ])

let suite =
  [
    Alcotest.test_case "forall normalization" `Quick
      test_forall_normalization;
    Alcotest.test_case "block shapes" `Quick test_shape_of_blocks;
    Alcotest.test_case "loop bound orientations" `Quick
      test_bound_orientations;
    Alcotest.test_case "reject nested forall" `Quick
      test_reject_nested_forall;
    Alcotest.test_case "reject constant subscript" `Quick
      test_reject_constant_subscript;
    Alcotest.test_case "reject non-constant range" `Quick
      test_reject_non_constant_range;
    Alcotest.test_case "reject empty range" `Quick test_reject_empty_range;
    Alcotest.test_case "reject second-order recurrence" `Quick
      test_reject_second_order_recurrence;
    Alcotest.test_case "reject non-unit counter step" `Quick
      test_reject_nonunit_counter_step;
    Alcotest.test_case "reject wrong append index" `Quick
      test_reject_wrong_append_index;
    Alcotest.test_case "reject non-accumulator result" `Quick
      test_reject_result_not_acc;
    Alcotest.test_case "reject gapped initial index" `Quick
      test_reject_gap_init_index;
    Alcotest.test_case "reject zero iterations" `Quick
      test_reject_zero_iterations;
    Alcotest.test_case "reject use-before-definition" `Quick
      test_reject_block_uses_later_block;
    Alcotest.test_case "reject scalar block" `Quick test_reject_scalar_block;
    Alcotest.test_case "reject three index ranges" `Quick
      test_reject_three_ranges;
    Alcotest.test_case "reject misordered 2-D subscripts" `Quick
      test_reject_2d_wrong_order;
    Alcotest.test_case "primitive expression checker" `Quick
      test_primitive_expr_checker;
    Alcotest.test_case "array reference collection" `Quick
      test_array_references;
  ]
