(* First-order linear recurrences: x_i = A_i * x_{i-1} + B_i (the paper's
   Example 2) — the forward-elimination kernel of tridiagonal solvers and
   IIR filters.  Compiled two ways:

   - Todd's direct scheme (Figure 7): a 3-cell feedback loop, initiation
     rate limited to 1/3;
   - the companion scheme (Figure 8): the recurrence analyzer extracts
     the coefficients symbolically, builds the companion pipeline
     c_i = G(a_i, a_{i-1}), and the even 4-cell loop with two circulating
     tokens restores the maximal rate 1/2.

   Run with:  dune exec examples/recurrence_solver.exe *)

module D = Compiler.Driver
module PC = Compiler.Program_compile
module FC = Compiler.Foriter_compile

let m = 256

let source =
  Printf.sprintf
    {|
param m = %d;
input A : array[real] [0, m];
input B : array[real] [0, m];

X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let P : real := A[i] * T[i-1] + B[i]
    in
      if i < m then
        iter T := T[i: P]; i := i + 1 enditer
      else T
      endif
    endlet
  endfor;
|}
    m

let () =
  let st = Random.State.make [| 2026 |] in
  let a = List.init (m + 1) (fun _ -> Random.State.float st 0.8) in
  let b = List.init (m + 1) (fun _ -> Random.State.float st 2.0 -. 1.0) in
  let inputs = [ ("A", D.wave_of_floats a); ("B", D.wave_of_floats b) ] in

  let table = Df_util.Table.create [ "scheme"; "cells"; "interval"; "rate" ] in
  let last = ref [] in
  List.iter
    (fun (label, scheme) ->
      let options = { PC.default_options with PC.scheme } in
      let prog, compiled = D.compile_source ~options source in
      let result = D.run ~waves:8 compiled ~inputs in
      D.check_against_oracle prog compiled result ~inputs;
      let interval = Sim.Metrics.output_interval result "X" in
      Df_util.Table.add_row table
        [
          label;
          string_of_int (Dfg.Graph.node_count compiled.PC.cp_graph);
          Printf.sprintf "%.3f" interval;
          Printf.sprintf "1/%.2f" interval;
        ];
      last := D.output_wave compiled result "X")
    [ ("todd (fig 7)", FC.Todd); ("companion (fig 8)", FC.Companion) ];
  Df_util.Table.print table;
  print_endline "both schemes produce identical, interpreter-checked values";

  let firsts = List.filteri (fun i _ -> i < 5) !last in
  Printf.printf "x[0..4] = %s\n"
    (String.concat ", "
       (List.map (fun v -> Printf.sprintf "%.4f" (Dfg.Value.to_real v)) firsts))
