examples/prefix_scan.ml: Compiler Dfg List Printf Sim
