examples/weather_pipe.mli:
