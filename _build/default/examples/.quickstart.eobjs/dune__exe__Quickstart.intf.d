examples/quickstart.mli:
