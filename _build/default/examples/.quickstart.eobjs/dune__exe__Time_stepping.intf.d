examples/time_stepping.mli:
