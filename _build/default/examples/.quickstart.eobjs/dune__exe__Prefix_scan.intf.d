examples/prefix_scan.mli:
