examples/kernels_tour.ml: Compiler Df_util Dfg Float Kernels List Printf Random Sim String
