examples/smoothing.mli:
