examples/smoothing.ml: Compiler Dfg Fun List Printf Sim
