examples/recurrence_solver.ml: Compiler Df_util Dfg List Printf Random Sim String
