examples/weather_pipe.ml: Compiler Df_util Dfg Fun List Machine Printf Random Sim
