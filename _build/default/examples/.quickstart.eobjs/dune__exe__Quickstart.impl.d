examples/quickstart.ml: Compiler Dfg List Printf Sim String
