examples/recurrence_solver.mli:
