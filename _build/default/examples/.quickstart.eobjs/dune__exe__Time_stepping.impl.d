examples/time_stepping.ml: Compiler Dfg Float List Printf
