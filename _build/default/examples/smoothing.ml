(* The paper's Example 1: a smoothing (relaxation) step with boundary
   conditions, compiled to a fully pipelined instruction graph (Figure 6).
   Demonstrates window selection gates, static boundary conditions folded
   to boolean control sequences, and the merge of boundary/interior rules.

   Run with:  dune exec examples/smoothing.exe *)

module D = Compiler.Driver
module PC = Compiler.Program_compile

let m = 126

let source =
  Printf.sprintf
    {|
param m = %d;
input C : array[real] [0, m+1];
input B : array[real] [0, m+1];

A : array[real] :=
  forall i in [0, m+1]
    P : real :=
      if (i = 0) | (i = m+1) then C[i]          %% boundary rule
      else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])   %% interior smoothing
      endif;
  construct
    B[i] * (P * P)
  endall;
|}
    m

let () =
  let prog, compiled = D.compile_source source in
  print_endline "instruction graph (DOT written to smoothing.dot):";
  Dfg.Dot.write_file "smoothing.dot" compiled.PC.cp_graph;
  List.iter
    (fun (op, k) -> Printf.printf "  %-10s x%d\n" op k)
    (Dfg.Graph.opcode_census compiled.PC.cp_graph);

  (* a bumpy signal to smooth *)
  let c =
    List.init (m + 2) (fun i ->
        sin (float_of_int i /. 5.0) +. (0.3 *. float_of_int (i mod 3)))
  in
  let b = List.init (m + 2) (fun _ -> 1.0) in
  let inputs = [ ("C", D.wave_of_floats c); ("B", D.wave_of_floats b) ] in
  let result = D.run ~waves:6 ~record_firings:true compiled ~inputs in
  D.check_against_oracle prog compiled result ~inputs;
  print_endline "outputs match the Val interpreter";

  Printf.printf "initiation interval: %.3f (maximal = 2.0)\n"
    (Sim.Metrics.output_interval result "A");
  Printf.printf "slowest cell period: %.3f\n"
    (Sim.Metrics.busiest_interval result);

  (* watch the pipe fill: firing timeline of the first cells *)
  print_endline "pipeline fill (first 60 time steps, * = firing):";
  print_string
    (Sim.Timeline.render ~width:60
       ~cells:(List.init (min 8 (Dfg.Graph.node_count compiled.PC.cp_graph)) Fun.id)
       compiled.PC.cp_graph result);

  (* show the smoothing effect on a few interior points *)
  let out = D.output_wave compiled result "A" in
  print_endline "  i     C[i]      A[i]";
  List.iteri
    (fun i v ->
      if i > 0 && i < 6 then
        Printf.printf "%3d  %+.4f  %+.4f\n" i (List.nth c i)
          (Dfg.Value.to_real v))
    out
