(* Quickstart: compile a small Val program to static dataflow machine
   code, simulate it, and check full pipelining.

   Run with:  dune exec examples/quickstart.exe *)

module D = Compiler.Driver
module PC = Compiler.Program_compile

let source =
  {|
param n = 63;
input A : array[real] [0, n];
input B : array[real] [0, n];

% the paper's Figure 2 expression, applied elementwise
R : array[real] :=
  forall i in [0, n]
    y : real := A[i] * B[i];
  construct
    (y + 2.) * (y - 3.)
  endall;
|}

let () =
  (* parse -> typecheck -> classify -> compile -> balance *)
  let prog, compiled = D.compile_source source in
  Printf.printf "compiled %d instruction cells, %d arcs\n"
    (Dfg.Graph.node_count compiled.PC.cp_graph)
    (Dfg.Graph.arc_count compiled.PC.cp_graph);
  List.iter
    (fun (op, k) -> Printf.printf "  %-10s x%d\n" op k)
    (Dfg.Graph.opcode_census compiled.PC.cp_graph);

  (* one wave of inputs, replayed 8 times for a steady-state measurement *)
  let n = 64 in
  let a = List.init n (fun i -> float_of_int i /. 8.0) in
  let b = List.init n (fun i -> 1.0 +. (float_of_int (i mod 5) /. 10.)) in
  let inputs = [ ("A", D.wave_of_floats a); ("B", D.wave_of_floats b) ] in
  let result = D.run ~waves:8 compiled ~inputs in

  (* correctness: the interpreter is the oracle *)
  D.check_against_oracle prog compiled result ~inputs;
  print_endline "outputs match the Val interpreter";

  (* the paper's claim: one result every ~2 instruction times *)
  let interval = Sim.Metrics.output_interval result "R" in
  Printf.printf "steady-state initiation interval: %.3f (maximal = 2.0)\n"
    interval;
  let first = List.filteri (fun i _ -> i < 4) (D.output_wave compiled result "R") in
  Printf.printf "first results: %s\n"
    (String.concat ", " (List.map Dfg.Value.to_string first))
