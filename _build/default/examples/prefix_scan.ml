(* Prefix sums as a degenerate linear recurrence (x_i = x_{i-1} + a_i),
   plus the paper's "multiple dimensions" extension: a 2-D forall over a
   grid, streamed row-major.

   Run with:  dune exec examples/prefix_scan.exe *)

module D = Compiler.Driver
module PC = Compiler.Program_compile

let n = 128

(* Note the sentinel element A[n+1]: Val's definition part is evaluated
   once more on the terminating cycle (i = n+1), so the input array must
   cover that read; the compiled selection gate discards it. *)
let scan_source =
  Printf.sprintf
    {|
param n = %d;
input A : array[real] [1, n+1];

S : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let s : real := T[i-1] + A[i]
    in
      if i <= n then iter T := T[i: s]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}
    n

let grid = 16

let grid_source =
  Printf.sprintf
    {|
param n = %d;
input G : array[real] [0, n-1] [0, n-1];

L : array[real] :=
  forall i in [1, n-2], j in [1, n-2]
  construct
    G[i-1, j] + G[i+1, j] + G[i, j-1] + G[i, j+1] - 4. * G[i, j]
  endall;
|}
    grid

let () =
  (* 1-D scan: the recurrence analyzer finds coefficient 1 (a "simple"
     for-iter) and the companion scheme runs it at the maximal rate *)
  let prog, compiled = D.compile_source scan_source in
  Printf.printf "scan compiles with scheme: %s\n"
    (List.assoc "S" compiled.PC.cp_schemes);
  let a = List.init (n + 1) (fun i -> float_of_int (i + 1)) in
  let inputs = [ ("A", D.wave_of_floats a) ] in
  let result = D.run ~waves:6 compiled ~inputs in
  D.check_against_oracle prog compiled result ~inputs;
  Printf.printf "scan interval: %.3f (maximal = 2.0)\n"
    (Sim.Metrics.output_interval result "S");
  (match List.rev (D.output_wave compiled result "S") with
  | last :: _ ->
    Printf.printf "sum of 1..%d computed in the pipe: %s\n" n
      (Dfg.Value.to_string last)
  | [] -> ());

  (* 2-D Laplacian stencil, streamed row-major *)
  let prog2, compiled2 = D.compile_source grid_source in
  let g =
    List.init (grid * grid) (fun k ->
        let i = k / grid and j = k mod grid in
        float_of_int ((i * i) + (j * j)) /. 100.)
  in
  let inputs2 = [ ("G", D.wave_of_floats g) ] in
  let result2 = D.run ~waves:4 compiled2 ~inputs:inputs2 in
  D.check_against_oracle prog2 compiled2 result2 ~inputs:inputs2;
  Printf.printf "2-D Laplacian: %d interior points per wave, interval %.3f\n"
    ((grid - 2) * (grid - 2))
    (Sim.Metrics.output_interval result2 "L")
