(* Tour of the scientific-kernel suite: compile every kernel, verify it
   against its independent OCaml reference, and report size and measured
   throughput next to the theoretical prediction.

   Run with:  dune exec examples/kernels_tour.exe *)

module D = Compiler.Driver
module PC = Compiler.Program_compile
module K = Kernels

let () =
  let n = 96 in
  let table =
    Df_util.Table.create
      [ "kernel"; "blocks"; "cells"; "predicted"; "measured"; "scheme" ]
  in
  List.iter
    (fun (k : K.kernel) ->
      let st = Random.State.make [| 17 |] in
      let inputs =
        k.K.inputs n st
        @ List.map (fun (name, v) -> (name, [ v ])) k.K.scalar_inputs
      in
      let prog, compiled =
        D.compile_source ~scalar_inputs:k.K.scalar_inputs (k.K.source n)
      in
      let result = D.run ~waves:8 compiled ~inputs in
      D.check_against_oracle prog compiled result ~inputs;
      let got =
        List.map Dfg.Value.to_real (D.output_wave compiled result k.K.output)
      in
      let expected = k.K.reference n inputs in
      List.iter2
        (fun a b -> assert (Float.abs (a -. b) <= 1e-9))
        expected got;
      let schemes =
        String.concat "+"
          (List.sort_uniq compare (List.map snd compiled.PC.cp_schemes))
      in
      Df_util.Table.add_row table
        [
          k.K.name;
          string_of_int k.K.blocks;
          string_of_int (Dfg.Graph.node_count compiled.PC.cp_graph);
          Printf.sprintf "%.3f" (k.K.predicted_interval n);
          Printf.sprintf "%.3f" (Sim.Metrics.output_interval result k.K.output);
          schemes;
        ])
    K.all;
  Df_util.Table.print table;
  print_endline
    "every kernel verified against the Val interpreter AND an independent \
     OCaml reference"
