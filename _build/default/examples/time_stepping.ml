(* Time-stepped simulation: the paper's intended use of array memories.

   "The array memories are used only for data that must be held for a long
   time interval ... for example, the data produced by one time step of a
   physics simulation which will not be used until the computation for the
   next time step begins."  (Section 2)

   Here an explicit-Euler heat equation step is compiled once as a fully
   pipelined dataflow program; the host plays the role of the array
   memory, holding each step's output field and replaying it as the next
   step's input wave.  Within a step, everything streams at the maximal
   rate; between steps, the field is "stored".

   Run with:  dune exec examples/time_stepping.exe *)

module D = Compiler.Driver
module PC = Compiler.Program_compile

let m = 94
let steps = 40
let alpha = 0.2

(* one explicit heat-equation step with fixed boundary values *)
let source =
  Printf.sprintf
    {|
param m = %d;
input U : array[real] [0, m+1];

V : array[real] :=
  forall i in [0, m+1]
  construct
    if (i = 0) | (i = m+1) then U[i]
    else U[i] + %f * (U[i-1] - 2.*U[i] + U[i+1])
    endif
  endall;
|}
    m alpha

let () =
  let prog, compiled = D.compile_source source in
  Printf.printf "heat step compiled to %d cells\n"
    (Dfg.Graph.node_count compiled.PC.cp_graph);

  (* initial condition: a hot spike in the middle of a cold rod *)
  let field =
    ref
      (List.init (m + 2) (fun i ->
           if i >= (m / 2) - 2 && i <= (m / 2) + 2 then 1.0 else 0.0))
  in
  let energy xs = List.fold_left ( +. ) 0.0 xs in
  let initial_energy = energy !field in
  for step = 1 to steps do
    let inputs = [ ("U", D.wave_of_floats !field) ] in
    let result = D.run compiled ~inputs in
    (* checked against the interpreter every 10th step *)
    if step mod 10 = 0 then D.check_against_oracle prog compiled result ~inputs;
    field := List.map Dfg.Value.to_real (D.output_wave compiled result "V")
  done;
  Printf.printf "after %d steps: energy %.6f (started %.6f, conserved: %b)\n"
    steps (energy !field) initial_energy
    (Float.abs (energy !field -. initial_energy) < 1e-9);
  (* the spike has diffused: the profile is smooth and low *)
  let peak = List.fold_left Float.max neg_infinity !field in
  Printf.printf "peak temperature %.4f (was 1.0)\n" peak;
  print_string "profile: ";
  List.iteri
    (fun i v ->
      if i mod 8 = 0 then
        print_string
          (if v > 0.15 then "#" else if v > 0.05 then "+" else "."))
    !field;
  print_newline ();
  assert (peak < 0.5)
