bench/sources.ml: Compiler List Printf Random
