bench/test_graphs.ml: Analysis Array Dfg Graph List Opcode Random
