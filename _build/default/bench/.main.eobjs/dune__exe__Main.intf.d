bench/main.mli:
