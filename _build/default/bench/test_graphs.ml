(* Random layered DAG builder shared by the balancing experiments. *)

open Dfg

let random_dag ~seed ~layers ~width =
  let rng = Random.State.make [| seed |] in
  let g = Graph.create () in
  let input = Graph.add g (Opcode.Input "a") [||] in
  let all = ref [ input ] in
  for _ = 1 to layers do
    let layer =
      List.init width (fun _ ->
          let pool = Array.of_list !all in
          let pick () = pool.(Random.State.int rng (Array.length pool)) in
          let n =
            Graph.add g (Opcode.Arith Opcode.Add)
              [| Graph.In_arc; Graph.In_arc |]
          in
          Graph.connect g ~src:(pick ()) ~dst:n ~port:0;
          Graph.connect g ~src:(pick ()) ~dst:n ~port:1;
          n)
    in
    all := layer @ !all
  done;
  let sinks = List.filter (fun id -> Analysis.successors g id = []) !all in
  let rec join = function
    | [] -> assert false
    | [ x ] -> x
    | x :: y :: rest ->
      let n =
        Graph.add g (Opcode.Arith Opcode.Add) [| Graph.In_arc; Graph.In_arc |]
      in
      Graph.connect g ~src:x ~dst:n ~port:0;
      Graph.connect g ~src:y ~dst:n ~port:1;
      join (rest @ [ n ])
  in
  let root = join sinks in
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:root ~dst:out ~port:0;
  g
