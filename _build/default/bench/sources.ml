(* Shared Val sources and input generators for the benchmark harness. *)

module D = Compiler.Driver

let example1 m =
  Printf.sprintf
    {|
param m = %d;
input C : array[real] [0, m+1];
input B : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real :=
      if (i = 0) | (i = m+1) then C[i]
      else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct
    B[i] * (P * P)
  endall;
|}
    m

let example2 m =
  Printf.sprintf
    {|
param m = %d;
input A : array[real] [0, m];
input B : array[real] [0, m];
X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let P : real := A[i] * T[i-1] + B[i]
    in
      if i < m then iter T := T[i: P]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}
    m

let figure3 m =
  Printf.sprintf
    {|
param m = %d;
input C : array[real] [0, m+1];
input B : array[real] [0, m+1];

A : array[real] :=
  forall i in [0, m+1]
    P : real :=
      if (i = 0) | (i = m+1) then C[i]
      else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct
    B[i] * (P * P)
  endall;

X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let P : real := A[i] * T[i-1] + B[i]
    in
      if i < m then iter T := T[i: P]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}
    m

let fig4_kernel m =
  Printf.sprintf
    {|
param m = %d;
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [1, m]
  construct
    0.25 * (C[i-1] + 2.*C[i] + C[i+1])
  endall;
|}
    m

let fig5_conditional n =
  Printf.sprintf
    {|
param n = %d;
input C : array[boolean] [0, n];
input A : array[real] [0, n];
input B : array[real] [0, n];
R : array[real] :=
  forall i in [0, n]
  construct
    if C[i] then -(A[i] + B[i]) else 5.*(A[i]*B[i] + 2.) endif
  endall;
|}
    n

(* Recurrence whose body chains [depth] affine stages around x[i-1]:
   x_i = A_d*( ... A_2*(A_1*x_{i-1} + B[i]) + B[i] ... ) + B[i].
   Todd's loop grows with [depth]; the companion pipeline keeps the loop
   at 4 cells. *)
let deep_recurrence ~depth m =
  let rec body k =
    if k = 0 then "T[i-1]"
    else Printf.sprintf "(%.2f * %s + B[i])" (0.9 /. float_of_int depth) (body (k - 1))
  in
  Printf.sprintf
    {|
param m = %d;
input A : array[real] [0, m];
input B : array[real] [0, m];
X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let P : real := %s + 0. * A[i]
    in
      if i < m then iter T := T[i: P]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}
    m (body depth)

let grid_2d n =
  Printf.sprintf
    {|
param n = %d;
input G : array[real] [0, n-1] [0, n-1];
L : array[real] :=
  forall i in [1, n-2], j in [1, n-2]
  construct
    0.25 * (G[i-1, j] + G[i+1, j] + G[i, j-1] + G[i, j+1])
  endall;
|}
    n

let random_wave st n = List.init n (fun _ -> Random.State.float st 2.0 -. 1.0)

let tame_wave st n = List.init n (fun _ -> Random.State.float st 0.8)

let real_inputs st spec =
  List.map (fun (name, size) -> (name, D.wave_of_floats (random_wave st size))) spec
