(* recur: explore the recurrence analysis behind the companion scheme.

   Give it the appended-element expression of a for-iter loop (accumulator
   T, counter i) and it reports whether the recurrence is affine, its
   coefficients, and the compiled cell counts under both schemes.

   Examples:
     recur 'A[i] * T[i-1] + B[i]'
     recur 'max(T[i-1], B[i])'
     recur --acc X 'X[i-1] / 2. + A[i]'
*)

module R = Compiler.Recurrence
module D = Compiler.Driver
module PC = Compiler.Program_compile
module FC = Compiler.Foriter_compile

let wrap_program ~acc expr_src =
  Printf.sprintf
    {|
param m = 40;
input A : array[real] [0, m];
input B : array[real] [0, m];
X : array[real] :=
  for
    i : integer := 1;
    %s : array[real] := [0: 0]
  do
    let P : real := %s
    in
      if i < m then iter %s := %s[i: P]; i := i + 1 enditer else %s endif
    endlet
  endfor;
|}
    acc expr_src acc acc acc

let analyze acc expr_src measure =
  try
    let expr = Val_lang.Parser.parse_expr expr_src in
    Printf.printf "x[i] = %s\n" (Val_lang.Pretty.expr_to_string expr);
    (match R.analyze ~acc ~elt:Val_lang.Ast.Treal expr with
    | R.Affine { coef; shift } ->
      Printf.printf "affine recurrence:  x[i] = P*x[i-1] + Q\n";
      Printf.printf "  P = %s\n" (Val_lang.Pretty.expr_to_string coef);
      Printf.printf "  Q = %s\n" (Val_lang.Pretty.expr_to_string shift);
      print_endline
        "companion function: G((p1,q1),(p2,q2)) = (p1*p2, p1*q2 + q1)";
      print_endline "=> simple for-iter (Theorem 3): maximal rate 1/2"
    | R.Not_affine why ->
      Printf.printf "no companion function found: %s\n" why;
      print_endline "=> compiled with Todd's direct scheme (rate < 1/2)");
    if measure then begin
      let src = wrap_program ~acc expr_src in
      let st = Random.State.make [| 3 |] in
      let wave () =
        D.wave_of_floats (List.init 41 (fun _ -> Random.State.float st 0.6))
      in
      let inputs = [ ("A", wave ()); ("B", wave ()) ] in
      print_endline "measured initiation intervals (m = 40, 8 waves):";
      List.iter
        (fun (label, scheme) ->
          match
            let options = { PC.default_options with PC.scheme } in
            let prog, compiled = D.compile_source ~options src in
            let result = D.run ~waves:8 compiled ~inputs in
            D.check_against_oracle prog compiled result ~inputs;
            (Sim.Metrics.output_interval result "X",
             Dfg.Graph.node_count compiled.PC.cp_graph)
          with
          | interval, cells ->
            Printf.printf "  %-10s %d cells, interval %.3f\n" label cells
              interval
          | exception Compiler.Expr_compile.Unsupported msg ->
            Printf.printf "  %-10s unavailable (%s)\n" label msg)
        [ ("todd", FC.Todd); ("companion", FC.Companion) ]
    end;
    `Ok ()
  with
  | Val_lang.Parser.Parse_error (msg, line, col) ->
    `Error (false, Printf.sprintf "parse error at %d:%d: %s" line col msg)
  | Val_lang.Classify.Not_in_class msg -> `Error (false, msg)

let cmd =
  let open Cmdliner in
  let expr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR"
           ~doc:"the appended-element expression, e.g. 'A[i]*T[i-1]+B[i]'")
  in
  let acc =
    Arg.(value & opt string "T"
         & info [ "acc" ] ~docv:"NAME" ~doc:"accumulator array name")
  in
  let measure =
    Arg.(value & flag
         & info [ "measure" ]
             ~doc:"compile under both schemes and measure throughput \
                   (requires the expression to reference input arrays A/B)")
  in
  Cmd.v
    (Cmd.info "recur" ~version:"1.0"
       ~doc:"analyze first-order recurrences for companion functions")
    Term.(ret (const analyze $ acc $ expr $ measure))

let () = exit (Cmdliner.Cmd.eval cmd)
