bin/dfsim.ml: Arg Cmd Cmdliner Compiler Dfg Fun Hashtbl List Machine Printf Random Sim String Term Val_lang
