bin/dfsim.mli:
