bin/valc.mli:
