bin/recur.ml: Arg Cmd Cmdliner Compiler Dfg List Printf Random Sim Term Val_lang
