bin/valc.ml: Arg Cmd Cmdliner Compiler Dfg Fun List Printf Term Val_lang
