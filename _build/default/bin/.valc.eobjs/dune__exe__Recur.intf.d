bin/recur.mli:
