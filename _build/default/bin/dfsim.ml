(* dfsim: compile a Val program and simulate it on the static dataflow
   machine.  Input arrays are synthesized deterministically (--seed) or
   read from simple text files of one number per line (--input NAME=FILE).

   Examples:
     dfsim program.val --waves 8
     dfsim program.val --input C=c.txt --input B=b.txt
     dfsim program.val --machine --pe 16 --stored
*)

module PC = Compiler.Program_compile
module D = Compiler.Driver
module ME = Machine.Machine_engine
module Arch = Machine.Arch

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_floats path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> (
          let line = String.trim line in
          if line = "" then go acc
          else
            match float_of_string_opt line with
            | Some f -> go (f :: acc)
            | None -> failwith (Printf.sprintf "%s: bad number %S" path line))
        | exception End_of_file -> List.rev acc
      in
      go [])

let synth_wave ~seed ~elt ~size name =
  let st =
    Random.State.make [| seed; Hashtbl.hash name |]
  in
  List.init size (fun _ ->
      match elt with
      | Val_lang.Ast.Tint -> Dfg.Value.Int (Random.State.int st 100)
      | Val_lang.Ast.Treal -> Dfg.Value.Real (Random.State.float st 2.0 -. 1.0)
      | Val_lang.Ast.Tbool -> Dfg.Value.Bool (Random.State.bool st))

(* Run a pre-compiled .dfg machine program (no oracle available). *)
let run_loaded path waves seed report =
  let g = Dfg.Text.read_file path in
  let inputs =
    List.map
      (fun (name, id) ->
        ignore id;
        (* wave size is not recorded in the .dfg; synthesize a generous
           stream and let the graph consume what it needs *)
        let st = Random.State.make [| seed; Hashtbl.hash name |] in
        (name,
         List.init (waves * 256) (fun _ ->
             Dfg.Value.Real (Random.State.float st 2.0 -. 1.0))))
      (Dfg.Graph.inputs g)
  in
  let result = Sim.Engine.run ~record_firings:report g ~inputs in
  List.iter
    (fun (name, _) ->
      let values = Sim.Engine.output_values result name in
      Printf.printf "%s: %d packets, interval %.3f
" name
        (List.length values)
        (Sim.Metrics.output_interval result name))
    result.Sim.Engine.outputs;
  if report then print_string (Sim.Report.render g result);
  `Ok ()

let run path waves seed input_files machine pe stored no_check report load =
  try
    if load then run_loaded path waves seed report
    else begin
    let source = read_file path in
    let prog, compiled = D.compile_source source in
    let inputs =
      List.map
        (fun (name, shape) ->
          let size = PC.wave_size shape in
          match List.assoc_opt name input_files with
          | Some file ->
            let vals = read_floats file in
            if List.length vals <> size then
              failwith
                (Printf.sprintf "input %s: %d values, expected %d" name
                   (List.length vals) size);
            (name, List.map (fun f -> Dfg.Value.Real f) vals)
          | None ->
            (name, synth_wave ~seed ~elt:shape.Val_lang.Classify.sh_elt ~size name))
        compiled.PC.cp_inputs
    in
    if machine then begin
      let arch =
        { Arch.default with
          Arch.n_pe = pe;
          array_policy = (if stored then Arch.Stored else Arch.Streamed);
        }
      in
      let feeds =
        List.map
          (fun (n, w) ->
            (n, List.concat_map (fun _ -> w) (List.init waves Fun.id)))
          inputs
      in
      let r = ME.run ~arch compiled.PC.cp_graph ~inputs:feeds in
      Printf.printf "machine: %s\n" (Arch.describe arch);
      Printf.printf "finished at t=%d (quiescent=%b)\n" r.ME.end_time
        r.ME.quiescent;
      let s = r.ME.stats in
      Printf.printf
        "dispatches=%d fu=%d am=%d results=%d acks=%d am-fraction=%.3f\n"
        s.ME.dispatches s.ME.fu_ops s.ME.am_ops s.ME.result_packets
        s.ME.ack_packets (ME.am_fraction s)
    end
    else begin
      let result = D.run ~waves compiled ~inputs in
      if not no_check then begin
        D.check_against_oracle prog compiled result ~inputs;
        print_endline "outputs verified against the Val interpreter"
      end;
      List.iter
        (fun (name, _) ->
          let interval = Sim.Metrics.output_interval result name in
          let wave = D.output_wave compiled result name in
          Printf.printf "%s: %d elements/wave, interval %.3f\n" name
            (List.length wave) interval;
          let shown = List.filteri (fun i _ -> i < 8) wave in
          Printf.printf "  [%s%s]\n"
            (String.concat ", " (List.map Dfg.Value.to_string shown))
            (if List.length wave > 8 then ", ..." else ""))
        compiled.PC.cp_outputs;
      if report then begin
        let r2 = D.run ~waves ~record_firings:true compiled ~inputs in
        print_string (Sim.Report.render compiled.PC.cp_graph r2)
      end
    end;
    `Ok ()
    end
  with
  | Sys_error msg | Failure msg -> `Error (false, msg)
  | Val_lang.Parser.Parse_error (msg, line, col) ->
    `Error (false, Printf.sprintf "%s:%d:%d: %s" path line col msg)
  | Val_lang.Classify.Not_in_class msg | Compiler.Driver.Mismatch msg ->
    `Error (false, msg)
  | Compiler.Expr_compile.Unsupported msg -> `Error (false, msg)

let cmd =
  let open Cmdliner in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Val source file")
  in
  let waves =
    Arg.(value & opt int 4
         & info [ "waves" ] ~docv:"N" ~doc:"input waves to stream")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"SEED" ~doc:"seed for synthesized inputs")
  in
  let input_files =
    Arg.(value & opt_all (pair ~sep:'=' string file) []
         & info [ "input" ] ~docv:"NAME=FILE"
             ~doc:"read an input array from a file (one number per line)")
  in
  let machine =
    Arg.(value & flag
         & info [ "machine" ]
             ~doc:"run on the machine-level simulator (PE/FU/AM/RN)")
  in
  let pe =
    Arg.(value & opt int Arch.default.Arch.n_pe
         & info [ "pe" ] ~docv:"N" ~doc:"processing elements (machine mode)")
  in
  let stored =
    Arg.(value & flag
         & info [ "stored" ]
             ~doc:"store arrays in array memory (baseline) instead of \
                   streaming them")
  in
  let no_check =
    Arg.(value & flag
         & info [ "no-check" ] ~doc:"skip the interpreter oracle comparison")
  in
  let report =
    Arg.(value & flag
         & info [ "report" ]
             ~doc:"print per-cell firing statistics (busiest stages,                    utilization, concurrency)")
  in
  let load =
    Arg.(value & flag
         & info [ "load" ]
             ~doc:"FILE is a compiled .dfg machine program (from valc                    --save) rather than Val source")
  in
  let term =
    Term.(ret (const run $ path $ waves $ seed $ input_files $ machine $ pe
               $ stored $ no_check $ report $ load))
  in
  Cmd.v
    (Cmd.info "dfsim" ~version:"1.0"
       ~doc:"simulate compiled Val programs on a static dataflow machine")
    term

let () = exit (Cmdliner.Cmd.eval cmd)
