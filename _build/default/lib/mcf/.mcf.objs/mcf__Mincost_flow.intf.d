lib/mcf/mincost_flow.mli:
