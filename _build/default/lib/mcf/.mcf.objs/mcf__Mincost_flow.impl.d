lib/mcf/mincost_flow.ml: Array List
