(** Minimum-cost flow, the optimization substrate behind the paper's
    optimal balancing result: "the optimum balancing of a graph (using
    minimum number of buffer stages) is equivalent to the linear
    programming dual of the min-cost flow problem" (Section 8,
    conclusion 3).

    Successive-shortest-paths with node potentials; path search is
    Bellman-Ford, so negative arc costs are accepted as long as the
    network has no negative cycle (a DAG-derived network never does). *)

type t

val create : int -> t
(** [create n] - an empty network on nodes [0 .. n-1]. *)

val node_count : t -> int

val add_arc : t -> src:int -> dst:int -> capacity:int -> cost:int -> int
(** Add a directed arc; returns an arc id for {!flow_on}.
    @raise Invalid_argument on bad endpoints or negative capacity. *)

type solution = { flow : int; cost : int }

val min_cost_max_flow : t -> source:int -> sink:int -> solution
(** Push the maximum flow from [source] to [sink] at minimum total cost.
    The network keeps the final flow assignment (query with {!flow_on});
    call on a fresh network for independent solves. *)

val flow_on : t -> int -> int
(** Flow currently assigned to an arc id. *)

val residual_shortest_distances : t -> root:int -> int array option
(** Bellman-Ford distances from [root] in the residual network of the
    current flow (forward arcs with remaining capacity at [cost], backward
    arcs of used flow at [-cost]).  Unreachable nodes get [max_int].
    [None] if a negative cycle exists (i.e., the flow is not optimal). *)

val potentials : t -> int array option
(** Bellman-Ford over the residual network started from distance 0 at
    {e every} node ("virtual super-root").  The result [pi] satisfies
    [pi.(y) <= pi.(x) + cost] for every residual arc [x -> y] — valid node
    potentials certifying optimality.  [None] on a negative cycle. *)
