(* Arcs are stored in a flat array; arc 2i and 2i+1 are a forward/backward
   residual pair.  User-visible arc ids are the even indices' pair index. *)

type arc = {
  dst : int;
  mutable cap : int;  (* remaining residual capacity *)
  cost : int;
}

type t = {
  n : int;
  mutable arcs : arc array;
  mutable arc_count : int;
  mutable heads : int list array;  (* node -> arc indices leaving it *)
  mutable initial_caps : int array;  (* per user arc id *)
  mutable user_arcs : int;
}

let create n =
  {
    n;
    arcs = [||];
    arc_count = 0;
    heads = Array.make (max n 1) [];
    initial_caps = [||];
    user_arcs = 0;
  }

let node_count t = t.n

let push_arc t a =
  if Array.length t.arcs = t.arc_count then begin
    let cap = max 16 (2 * Array.length t.arcs) in
    let arcs = Array.make cap a in
    Array.blit t.arcs 0 arcs 0 t.arc_count;
    t.arcs <- arcs
  end;
  t.arcs.(t.arc_count) <- a;
  t.arc_count <- t.arc_count + 1;
  t.arc_count - 1

let add_arc t ~src ~dst ~capacity ~cost =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Mincost_flow.add_arc: endpoint out of range";
  if capacity < 0 then
    invalid_arg "Mincost_flow.add_arc: negative capacity";
  let fwd = push_arc t { dst; cap = capacity; cost } in
  let bwd = push_arc t { dst = src; cap = 0; cost = -cost } in
  assert (bwd = fwd + 1);
  t.heads.(src) <- fwd :: t.heads.(src);
  t.heads.(dst) <- bwd :: t.heads.(dst);
  let id = t.user_arcs in
  if Array.length t.initial_caps = id then begin
    let caps = Array.make (max 16 (2 * max 1 id)) 0 in
    Array.blit t.initial_caps 0 caps 0 id;
    t.initial_caps <- caps
  end;
  t.initial_caps.(id) <- capacity;
  t.user_arcs <- id + 1;
  id

type solution = { flow : int; cost : int }

(* Bellman-Ford over the residual network; returns (dist, pred_arc). *)
let bellman_ford t ~source =
  let dist = Array.make t.n max_int in
  let pred = Array.make t.n (-1) in
  dist.(source) <- 0;
  let changed = ref true in
  let iters = ref 0 in
  while !changed do
    changed := false;
    incr iters;
    if !iters > t.n + 1 then failwith "Mincost_flow: negative cycle";
    for u = 0 to t.n - 1 do
      if dist.(u) < max_int then
        List.iter
          (fun ai ->
            let a = t.arcs.(ai) in
            if a.cap > 0 && dist.(u) + a.cost < dist.(a.dst) then begin
              dist.(a.dst) <- dist.(u) + a.cost;
              pred.(a.dst) <- ai;
              changed := true
            end)
          t.heads.(u)
    done
  done;
  (dist, pred)

(* Source of an arc index: the dst of its residual partner. *)
let arc_src t ai = t.arcs.(ai lxor 1).dst

let min_cost_max_flow t ~source ~sink =
  if source = sink then invalid_arg "Mincost_flow: source = sink";
  let total_flow = ref 0 and total_cost = ref 0 in
  let continue = ref true in
  while !continue do
    let dist, pred = bellman_ford t ~source in
    if dist.(sink) = max_int then continue := false
    else begin
      (* bottleneck along the path *)
      let rec bottleneck v acc =
        if v = source then acc
        else
          let ai = pred.(v) in
          bottleneck (arc_src t ai) (min acc t.arcs.(ai).cap)
      in
      let delta = bottleneck sink max_int in
      assert (delta > 0);
      let rec apply v =
        if v <> source then begin
          let ai = pred.(v) in
          t.arcs.(ai).cap <- t.arcs.(ai).cap - delta;
          t.arcs.(ai lxor 1).cap <- t.arcs.(ai lxor 1).cap + delta;
          apply (arc_src t ai)
        end
      in
      apply sink;
      total_flow := !total_flow + delta;
      total_cost := !total_cost + (delta * dist.(sink))
    end
  done;
  { flow = !total_flow; cost = !total_cost }

let flow_on t id =
  if id < 0 || id >= t.user_arcs then
    invalid_arg "Mincost_flow.flow_on: bad arc id";
  t.initial_caps.(id) - t.arcs.(2 * id).cap

let bf_relax_all t dist =
  let relax () =
    let changed = ref false in
    for u = 0 to t.n - 1 do
      if dist.(u) < max_int then
        List.iter
          (fun ai ->
            let a = t.arcs.(ai) in
            if a.cap > 0 && dist.(u) + a.cost < dist.(a.dst) then begin
              dist.(a.dst) <- dist.(u) + a.cost;
              changed := true
            end)
          t.heads.(u)
    done;
    !changed
  in
  let rec run i =
    if i > t.n then false else if relax () then run (i + 1) else true
  in
  run 0

let residual_shortest_distances t ~root =
  let dist = Array.make t.n max_int in
  dist.(root) <- 0;
  if bf_relax_all t dist then Some dist else None

let potentials t =
  let dist = Array.make t.n 0 in
  if bf_relax_all t dist then Some dist else None
