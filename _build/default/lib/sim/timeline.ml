open Dfg

let render ?(from_time = 0) ?(width = 72) ?cells g result =
  let ids =
    match cells with
    | Some ids -> ids
    | None -> List.init (Graph.node_count g) Fun.id
  in
  let label_width =
    List.fold_left
      (fun acc id ->
        max acc (String.length (Graph.node g id).Graph.label + 4))
      8 ids
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%*s t=%d .. %d\n" label_width "" from_time
       (from_time + width - 1));
  List.iter
    (fun id ->
      let node = Graph.node g id in
      let marks = Bytes.make width '.' in
      List.iter
        (fun t ->
          let k = t - from_time in
          if k >= 0 && k < width then Bytes.set marks k '*')
        result.Engine.fire_times.(id);
      Buffer.add_string buf
        (Printf.sprintf "%*s %s\n" label_width
           (Printf.sprintf "%s#%d" node.Graph.label id)
           (Bytes.to_string marks)))
    ids;
  Buffer.contents buf
