open Dfg

type row = {
  cell : int;
  label : string;
  opcode : string;
  firings : int;
  period : float;
  utilization : float;
}

let rows g result =
  Graph.fold_nodes g ~init:[] ~f:(fun acc n ->
      let id = n.Graph.id in
      {
        cell = id;
        label = n.Graph.label;
        opcode = Opcode.name n.Graph.op;
        firings = result.Engine.fire_counts.(id);
        period = Metrics.node_period result id;
        utilization = Metrics.utilization result id;
      }
      :: acc)
  |> List.rev

let concurrency result =
  if result.Engine.end_time = 0 then 0.0
  else
    float_of_int (Array.fold_left ( + ) 0 result.Engine.fire_counts)
    /. float_of_int result.Engine.end_time

let render ?(top = 16) g result =
  let buf = Buffer.create 1024 in
  let all = rows g result in
  let busiest =
    List.sort (fun a b -> compare b.firings a.firings) all
    |> List.filteri (fun i _ -> i < top)
  in
  let table =
    Df_util.Table.create [ "cell"; "opcode"; "firings"; "period"; "util" ]
  in
  List.iter
    (fun r ->
      Df_util.Table.add_row table
        [
          Printf.sprintf "%s#%d" r.label r.cell;
          r.opcode;
          string_of_int r.firings;
          (if Float.is_nan r.period then "-"
           else Printf.sprintf "%.2f" r.period);
          Printf.sprintf "%.0f%%" (100. *. r.utilization);
        ])
    busiest;
  Buffer.add_string buf (Df_util.Table.render table);
  List.iter
    (fun (name, arrivals) ->
      let times = List.map fst arrivals in
      Buffer.add_string buf
        (Printf.sprintf "output %s: %d packets, interval %.3f\n" name
           (List.length arrivals)
           (Metrics.initiation_interval times)))
    result.Engine.outputs;
  Buffer.add_string buf
    (Printf.sprintf
       "end time %d, %d total firings, mean concurrency %.1f cells/step\n"
       result.Engine.end_time
       (Array.fold_left ( + ) 0 result.Engine.fire_counts)
       (concurrency result));
  Buffer.contents buf
