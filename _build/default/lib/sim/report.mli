open Dfg

(** Human-readable simulation reports: per-cell firing statistics and the
    pipeline picture the paper paints ("thousands of instructions in
    hundreds of stages in concurrent execution"). *)

type row = {
  cell : int;
  label : string;
  opcode : string;
  firings : int;
  period : float;       (** mean steady-state firing period, [nan] if <2 *)
  utilization : float;  (** fraction of the maximal rate 1/2 *)
}

val rows : Graph.t -> Engine.result -> row list
(** One row per cell, in id order.  Requires the run to have used
    [record_firings:true] for periods; firing counts are always
    available. *)

val render : ?top:int -> Graph.t -> Engine.result -> string
(** A table of the busiest [top] cells (default 16) plus summary lines:
    output intervals, total firings, concurrency estimate. *)

val concurrency : Engine.result -> float
(** Average firings per time step — how many cells fire concurrently in a
    typical step. *)
