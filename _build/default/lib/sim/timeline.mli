open Dfg

(** ASCII firing timelines: a Gantt-like picture of which cells fire at
    which time steps — the textual version of watching the paper's
    pipeline fill and reach the steady state where every stage fires every
    other step. *)

val render :
  ?from_time:int -> ?width:int -> ?cells:int list -> Graph.t ->
  Engine.result -> string
(** One row per cell (all by default, or the given ids), one column per
    time step starting at [from_time] (default 0) for [width] steps
    (default 72).  [*] marks a firing, [.] idle.  Requires the run to have
    used [record_firings:true]. *)
