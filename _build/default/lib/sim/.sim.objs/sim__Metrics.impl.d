lib/sim/metrics.ml: Array Engine Float List
