lib/sim/timeline.mli: Dfg Engine Graph
