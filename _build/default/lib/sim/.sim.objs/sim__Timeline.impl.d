lib/sim/timeline.ml: Array Buffer Bytes Dfg Engine Fun Graph List Printf String
