lib/sim/engine.ml: Array Ctlseq Df_util Dfg Graph List Opcode Option Printf Queue String Value
