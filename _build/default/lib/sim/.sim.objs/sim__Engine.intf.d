lib/sim/engine.mli: Dfg Graph Value
