lib/sim/report.ml: Array Buffer Df_util Dfg Engine Float Graph List Metrics Opcode Printf
