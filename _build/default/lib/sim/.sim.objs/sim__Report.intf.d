lib/sim/report.mli: Dfg Engine Graph
