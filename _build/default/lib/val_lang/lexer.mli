(** Hand-written lexer for the Val subset.

    Comments run from [%] to end of line, as in the paper's listings. *)

type token =
  | INT of int
  | REAL of float
  | IDENT of string
  | KW of string        (* keywords: forall, in, construct, endall, ... *)
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON
  | ASSIGN              (* := *)
  | PLUS | MINUS | STAR | SLASH
  | LT | LE | GT | GE | EQ | NE
  | AMP | BAR | TILDE
  | EOF

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int
(** [Lex_error (msg, line, col)]. *)

val keywords : string list
(** All recognized keywords. *)

val tokenize : string -> located list
(** Tokenize a full source string.  The result ends with an [EOF] token.
    @raise Lex_error on an illegal character or malformed number. *)

val token_name : token -> string
(** Human-readable token description for error messages. *)
