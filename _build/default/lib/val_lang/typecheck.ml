open Ast

exception Error of string

type scalar_env = (string * scalar_type) list
type array_env = (string * scalar_type) list

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let rec eval_const params = function
  | C_int i -> i
  | C_name n -> (
    match List.assoc_opt n params with
    | Some v -> v
    | None -> errf "unbound parameter %s in constant expression" n)
  | C_add (a, b) -> eval_const params a + eval_const params b
  | C_sub (a, b) -> eval_const params a - eval_const params b
  | C_mul (a, b) -> eval_const params a * eval_const params b

let promote t1 t2 =
  match (t1, t2) with
  | Tint, Tint -> Tint
  | (Treal | Tint), (Treal | Tint) -> Treal
  | Tbool, Tbool -> Tbool
  | _ ->
    errf "cannot combine operands of types %s and %s" (scalar_type_name t1)
      (scalar_type_name t2)

let require_numeric op t =
  match t with
  | Tint | Treal -> ()
  | Tbool -> errf "operator %s applied to boolean operand" op

let require_bool op t =
  match t with
  | Tbool -> ()
  | Tint | Treal ->
    errf "operator %s applied to %s operand" op (scalar_type_name t)

let rec check_expr ~scalars ~arrays expr =
  match expr with
  | Int_lit _ -> Tint
  | Real_lit _ -> Treal
  | Bool_lit _ -> Tbool
  | Var name -> (
    match List.assoc_opt name scalars with
    | Some t -> t
    | None ->
      if List.mem_assoc name arrays then
        errf "array %s used where a scalar is required" name
      else errf "unbound identifier %s" name)
  | Binop (op, a, b) ->
    let ta = check_expr ~scalars ~arrays a in
    let tb = check_expr ~scalars ~arrays b in
    let opname = binop_name op in
    if is_arith op then begin
      require_numeric opname ta;
      require_numeric opname tb;
      promote ta tb
    end
    else if is_compare op then begin
      (match op with
      | Eq | Ne -> ignore (promote ta tb)
      | _ ->
        require_numeric opname ta;
        require_numeric opname tb;
        ignore (promote ta tb));
      Tbool
    end
    else begin
      require_bool opname ta;
      require_bool opname tb;
      Tbool
    end
  | Unop (Neg, a) ->
    let ta = check_expr ~scalars ~arrays a in
    require_numeric "unary -" ta;
    ta
  | Unop (Fn Abs, a) ->
    let ta = check_expr ~scalars ~arrays a in
    require_numeric "abs" ta;
    ta
  | Unop (Fn f, a) ->
    let ta = check_expr ~scalars ~arrays a in
    require_numeric (math_fn_name f) ta;
    Treal
  | Unop (Not, a) ->
    let ta = check_expr ~scalars ~arrays a in
    require_bool "~" ta;
    Tbool
  | Select (name, indices) -> (
    match List.assoc_opt name arrays with
    | None ->
      if List.mem_assoc name scalars then
        errf "scalar %s subscripted like an array" name
      else errf "unbound array %s" name
    | Some elt ->
      List.iter (check_index ~scalars) indices;
      elt)
  | Let (defs, body) ->
    let scalars = check_defs ~scalars ~arrays defs in
    check_expr ~scalars ~arrays body
  | If (c, t, e) ->
    let tc = check_expr ~scalars ~arrays c in
    require_bool "if condition" tc;
    let tt = check_expr ~scalars ~arrays t in
    let te = check_expr ~scalars ~arrays e in
    promote tt te

and check_index ~scalars = function
  | Ix_var (v, _) -> (
    match List.assoc_opt v scalars with
    | Some Tint -> ()
    | Some t -> errf "index variable %s has type %s" v (scalar_type_name t)
    | None -> errf "unbound index variable %s" v)
  | Ix_const _ -> ()

and check_defs ~scalars ~arrays defs =
  List.fold_left
    (fun scalars { def_name; def_type; def_rhs } ->
      let t = check_expr ~scalars ~arrays def_rhs in
      (match def_type with
      | Some (Scalar declared) ->
        (* Declared type must be reachable by promotion (int literal
           initializing a real is fine, as in the paper's [0: 0]). *)
        if promote t declared <> declared then
          errf "definition %s declared %s but has type %s" def_name
            (scalar_type_name declared) (scalar_type_name t)
      | Some (Array _) -> errf "definition %s cannot have array type" def_name
      | None -> ());
      let t =
        match def_type with Some (Scalar declared) -> declared | _ -> t
      in
      (def_name, t) :: scalars)
    scalars defs

let check_forall ~params ~scalars ~arrays fa =
  ignore params;
  let scalars =
    List.fold_left
      (fun acc { rng_var; _ } -> (rng_var, Tint) :: acc)
      scalars fa.fa_ranges
  in
  let scalars = check_defs ~scalars ~arrays fa.fa_defs in
  check_expr ~scalars ~arrays fa.fa_body

let check_foriter ~params ~scalars ~arrays fi =
  ignore params;
  (* Loop names enter scope for the body; the accumulating array is an
     array in scope. *)
  let scalars, arrays =
    List.fold_left
      (fun (scalars, arrays) init ->
        match init with
        | Init_scalar (name, ty, rhs) ->
          let t = check_expr ~scalars ~arrays rhs in
          let t =
            match ty with
            | Some (Scalar declared) ->
              if promote t declared <> declared then
                errf "loop name %s declared %s but initialized with %s" name
                  (scalar_type_name declared) (scalar_type_name t)
              else declared
            | Some (Array _) ->
              errf "loop name %s declared array but initialized as scalar"
                name
            | None -> t
          in
          ((name, t) :: scalars, arrays)
        | Init_array (name, ty, _r, e) ->
          let te = check_expr ~scalars ~arrays e in
          let elt =
            match ty with
            | Some (Array declared) ->
              if promote te declared <> declared then
                errf "array %s declared array[%s] but initialized with %s"
                  name (scalar_type_name declared) (scalar_type_name te)
              else declared
            | Some (Scalar _) ->
              errf "loop name %s declared scalar but initialized as array"
                name
            | None -> te
          in
          (scalars, (name, elt) :: arrays))
      (scalars, arrays) fi.fi_inits
  in
  let acc_names = List.filter_map (fun (n, _) -> Some n) arrays in
  ignore acc_names;
  let rec check_body ~scalars body =
    match body with
    | Iter_let (defs, rest) ->
      let scalars = check_defs ~scalars ~arrays defs in
      check_body ~scalars rest
    | Iter_if (c, t, e) ->
      let tc = check_expr ~scalars ~arrays c in
      require_bool "loop condition" tc;
      let tt = check_body ~scalars t in
      let te = check_body ~scalars e in
      (match (tt, te) with
      | Some a, Some b -> Some (promote a b)
      | Some a, None | None, Some a -> Some a
      | None, None -> None)
    | Iter_continue updates ->
      List.iter
        (fun (name, upd) ->
          match upd with
          | Upd_expr rhs ->
            let t = check_expr ~scalars ~arrays rhs in
            (match List.assoc_opt name scalars with
            | Some declared ->
              if promote t declared <> declared then
                errf "loop update %s := ... has type %s, expected %s" name
                  (scalar_type_name t) (scalar_type_name declared)
            | None ->
              if List.mem_assoc name arrays then
                errf "array loop name %s updated with a scalar expression"
                  name
              else errf "loop update of unknown loop name %s" name)
          | Upd_append (arr, ix, e) -> (
            check_index ~scalars ix;
            match List.assoc_opt arr arrays with
            | None -> errf "append to unknown array loop name %s" arr
            | Some elt ->
              if name <> arr then
                errf "append must have the form %s := %s[...]" name name;
              let te = check_expr ~scalars ~arrays e in
              if promote te elt <> elt then
                errf "appended element has type %s, expected %s"
                  (scalar_type_name te) (scalar_type_name elt)))
        updates;
      None
    | Iter_result e ->
      (* the result of the paper's loops is the accumulated array *)
      (match e with
      | Var n when List.mem_assoc n arrays ->
        Some (List.assoc n arrays)
      | _ -> Some (check_expr ~scalars ~arrays e))
  in
  match check_body ~scalars fi.fi_body with
  | Some t -> t
  | None -> errf "for-iter body never terminates (no result arm)"

let check_program prog =
  let params =
    List.fold_left
      (fun acc (name, ce) -> (name, eval_const acc ce) :: acc)
      [] prog.prog_params
  in
  let scalars0 =
    List.map (fun (name, _) -> (name, Tint)) params
    @ List.filter_map
        (fun inp ->
          match inp.in_type with
          | Scalar t -> Some (inp.in_name, t)
          | Array _ -> None)
        prog.prog_inputs
  in
  let arrays0 =
    List.filter_map
      (fun inp ->
        match inp.in_type with
        | Array t ->
          if inp.in_ranges = [] then
            errf "array input %s is missing its index range" inp.in_name;
          Some (inp.in_name, t)
        | Scalar _ -> None)
      prog.prog_inputs
  in
  let _final_arrays =
    List.fold_left
      (fun arrays blk ->
        let declared =
          match blk.blk_type with
          | Array t -> t
          | Scalar _ -> errf "block %s must define an array" blk.blk_name
        in
        if List.mem_assoc blk.blk_name arrays then
          errf "block %s redefines an existing array" blk.blk_name;
        let t =
          match blk.blk_rhs with
          | Forall fa -> check_forall ~params ~scalars:scalars0 ~arrays fa
          | Foriter fi -> check_foriter ~params ~scalars:scalars0 ~arrays fi
        in
        if promote t declared <> declared then
          errf "block %s declared array[%s] but computes array[%s]"
            blk.blk_name
            (scalar_type_name declared)
            (scalar_type_name t);
        (blk.blk_name, declared) :: arrays)
      arrays0 prog.prog_blocks
  in
  ()
