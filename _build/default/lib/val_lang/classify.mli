(** The paper's program classes (Sections 4-7), checked and normalized.

    - {e primitive expression} (Definition, §5): literals, scalar
      identifiers, operator applications, array selections [A[i+m]],
      [let-in] and [if-then-else] over primitive parts;
    - {e primitive forall} (Definition, §6): constant index range, defs and
      accumulation all primitive in the index variable;
    - {e primitive for-iter} (Definition, §7): integer counter [p..q],
      accumulating array initialized [X := [r: E]] with [r = p-1], each
      cycle appending [X := X[i: P]] where [P] is primitive in [i] and may
      reference [X] only as [X[i-1]] (first-order recurrence);
    - {e pipe-structured program} (Definition, §4): a sequence of such
      blocks, each consuming only inputs and earlier blocks, with fixed
      index ranges.

    Whether a primitive for-iter is {e simple} (its recurrence has a
    companion function) is decided by the compiler's recurrence analyzer,
    not here. *)

exception Not_in_class of string
(** Raised with an explanation when a program falls outside the class. *)

type array_shape = {
  sh_elt : Ast.scalar_type;
  sh_ranges : (int * int) list;  (* one [(lo, hi)] per dimension *)
}

type prim_forall = {
  pf_name : string;
  pf_elt : Ast.scalar_type;
  pf_ranges : (string * int * int) list;  (* index var, lo, hi *)
  pf_defs : Ast.def list;
  pf_body : Ast.expr;
}

type prim_foriter = {
  pi_name : string;
  pi_elt : Ast.scalar_type;
  pi_counter : string;
  pi_first : int;       (* first appended index, [p] *)
  pi_last : int;        (* last appended index, [q] *)
  pi_acc : string;
  pi_init_index : int;  (* [r]; the class requires [r = p-1] *)
  pi_init : Ast.expr;   (* initial element: primitive, no index variable *)
  pi_elem : Ast.expr;   (* appended element: primitive on the counter *)
}

type pipe_block = Pb_forall of prim_forall | Pb_foriter of prim_foriter

type pipe_program = {
  pp_params : (string * int) list;
  pp_scalar_inputs : (string * Ast.scalar_type) list;
  pp_array_inputs : (string * array_shape) list;
  pp_blocks : pipe_block list;
}

val block_name : pipe_block -> string

val block_shape : pipe_block -> array_shape
(** Index range(s) and element type of the array a block constructs. *)

val check_primitive_expr :
  index_vars:string list ->
  scalars:string list ->
  arrays:string list ->
  ?select_ok:(string -> int list -> unit) ->
  Ast.expr ->
  unit
(** Check the §5 definition.  [select_ok name offsets] may impose extra
    per-array constraints on selection offsets (used to restrict the
    for-iter accumulator to [X[i-1]]); it should raise {!Not_in_class} to
    reject. @raise Not_in_class *)

val is_primitive_expr :
  index_vars:string list ->
  scalars:string list ->
  arrays:string list ->
  Ast.expr ->
  bool

val array_references : Ast.expr -> (string * int list) list
(** All [(array, offsets)] selections occurring in an expression; offsets
    of constant subscripts are not included.  Multi-dimensional selections
    contribute their offset vector flattened per dimension. *)

val check_windows :
  shapes:(string * array_shape) list ->
  index_ranges:(string * (int * int)) list ->
  Ast.expr ->
  where:string ->
  unit
(** Whole-range window check: every [A[i+m]] with [i] in its full range
    must fall inside [A]'s declared range.  Not applied during
    classification (conditional arms only access their own index points —
    the compiler performs the precise masked check); available as a
    diagnostic for unconditional code. @raise Not_in_class *)

val classify_program : Ast.program -> pipe_program
(** Full pipe-structured check + normalization.  Also verifies that every
    consumed window [A[i+m]], [i] in [lo, hi], fits inside the producer's
    declared range. @raise Not_in_class *)
