open Ast

exception Parse_error of string * int * int

type state = { toks : Lexer.located array; mutable pos : int }

let current st = st.toks.(st.pos)

let peek st = (current st).tok

let peek_ahead st n =
  let i = st.pos + n in
  if i < Array.length st.toks then st.toks.(i).tok else Lexer.EOF

let error st msg =
  let { Lexer.line; col; _ } = current st in
  raise (Parse_error (msg, line, col))

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Lexer.token_name tok)
         (Lexer.token_name (peek st)))

let expect_kw st kw = expect st (Lexer.KW kw)

let at_kw st kw = peek st = Lexer.KW kw

let expect_ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> error st ("expected identifier but found " ^ Lexer.token_name t)

(* ------------------------------------------------------------------ *)
(* Compile-time constant expressions                                    *)
(* ------------------------------------------------------------------ *)

let rec parse_cexpr st =
  let lhs = ref (parse_cterm st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PLUS ->
      advance st;
      lhs := C_add (!lhs, parse_cterm st)
    | Lexer.MINUS ->
      advance st;
      lhs := C_sub (!lhs, parse_cterm st)
    | _ -> continue := false
  done;
  !lhs

and parse_cterm st =
  let lhs = ref (parse_cfactor st) in
  while peek st = Lexer.STAR do
    advance st;
    lhs := C_mul (!lhs, parse_cfactor st)
  done;
  !lhs

and parse_cfactor st =
  match peek st with
  | Lexer.INT i ->
    advance st;
    C_int i
  | Lexer.MINUS ->
    advance st;
    C_sub (C_int 0, parse_cfactor st)
  | Lexer.IDENT s ->
    advance st;
    C_name s
  | Lexer.LPAREN ->
    advance st;
    let e = parse_cexpr st in
    expect st Lexer.RPAREN;
    e
  | t -> error st ("expected constant expression, found " ^ Lexer.token_name t)

(* ------------------------------------------------------------------ *)
(* Types                                                                *)
(* ------------------------------------------------------------------ *)

let parse_scalar_type st =
  match peek st with
  | Lexer.KW "integer" ->
    advance st;
    Tint
  | Lexer.KW "real" ->
    advance st;
    Treal
  | Lexer.KW "boolean" ->
    advance st;
    Tbool
  | t -> error st ("expected scalar type, found " ^ Lexer.token_name t)

let parse_type st =
  if at_kw st "array" then begin
    advance st;
    expect st Lexer.LBRACKET;
    let elt = parse_scalar_type st in
    expect st Lexer.RBRACKET;
    Array elt
  end
  else Scalar (parse_scalar_type st)

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

let parse_index st =
  match peek st with
  | Lexer.IDENT v -> (
    advance st;
    match peek st with
    | Lexer.PLUS -> (
      advance st;
      match peek st with
      | Lexer.INT k ->
        advance st;
        Ix_var (v, k)
      | t -> error st ("expected integer offset, found " ^ Lexer.token_name t))
    | Lexer.MINUS -> (
      advance st;
      match peek st with
      | Lexer.INT k ->
        advance st;
        Ix_var (v, -k)
      | t -> error st ("expected integer offset, found " ^ Lexer.token_name t))
    | _ -> Ix_var (v, 0))
  | Lexer.INT _ | Lexer.MINUS | Lexer.LPAREN -> Ix_const (parse_cexpr st)
  | t -> error st ("expected array subscript, found " ^ Lexer.token_name t)

let rec parse_expr_prec st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek st = Lexer.BAR do
    advance st;
    lhs := Binop (Or, !lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_cmp st) in
  while peek st = Lexer.AMP do
    advance st;
    lhs := Binop (And, !lhs, parse_cmp st)
  done;
  !lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Lexer.LT -> Some Lt
    | Lexer.LE -> Some Le
    | Lexer.GT -> Some Gt
    | Lexer.GE -> Some Ge
    | Lexer.EQ -> Some Eq
    | Lexer.NE -> Some Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Binop (op, lhs, parse_add st)

and parse_add st =
  let lhs = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PLUS ->
      advance st;
      lhs := Binop (Add, !lhs, parse_mul st)
    | Lexer.MINUS ->
      advance st;
      lhs := Binop (Sub, !lhs, parse_mul st)
    | _ -> continue := false
  done;
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.STAR ->
      advance st;
      lhs := Binop (Mul, !lhs, parse_unary st)
    | Lexer.SLASH ->
      advance st;
      lhs := Binop (Div, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Lexer.MINUS ->
    advance st;
    Unop (Neg, parse_unary st)
  | Lexer.TILDE ->
    advance st;
    Unop (Not, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Lexer.INT i ->
    advance st;
    Int_lit i
  | Lexer.REAL f ->
    advance st;
    Real_lit f
  | Lexer.KW "true" ->
    advance st;
    Bool_lit true
  | Lexer.KW "false" ->
    advance st;
    Bool_lit false
  | Lexer.KW (("sqrt" | "abs" | "exp" | "ln" | "sin" | "cos") as fn) ->
    advance st;
    expect st Lexer.LPAREN;
    let a = parse_expr_prec st in
    expect st Lexer.RPAREN;
    let f =
      match fn with
      | "sqrt" -> Sqrt | "abs" -> Abs | "exp" -> Exp
      | "ln" -> Ln | "sin" -> Sin | _ -> Cos
    in
    Unop (Fn f, a)
  | Lexer.KW ("min" | "max") ->
    let op = if at_kw st "min" then Min else Max in
    advance st;
    expect st Lexer.LPAREN;
    let a = parse_expr_prec st in
    expect st Lexer.COMMA;
    let b = parse_expr_prec st in
    expect st Lexer.RPAREN;
    Binop (op, a, b)
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.LBRACKET ->
      advance st;
      let rec indices acc =
        let ix = parse_index st in
        match peek st with
        | Lexer.COMMA ->
          advance st;
          indices (ix :: acc)
        | _ -> List.rev (ix :: acc)
      in
      let ixs = indices [] in
      expect st Lexer.RBRACKET;
      Select (name, ixs)
    | _ -> Var name)
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr_prec st in
    expect st Lexer.RPAREN;
    e
  | Lexer.KW "if" -> parse_if_expr st
  | Lexer.KW "let" ->
    advance st;
    let defs = parse_defs st ~stop:(Lexer.KW "in") in
    expect_kw st "in";
    let body = parse_expr_prec st in
    expect_kw st "endlet";
    Let (defs, body)
  | t -> error st ("expected expression, found " ^ Lexer.token_name t)

and parse_if_expr st =
  expect_kw st "if";
  let cond = parse_expr_prec st in
  expect_kw st "then";
  let then_e = parse_expr_prec st in
  let rec arms () =
    match peek st with
    | Lexer.KW "elseif" ->
      advance st;
      let c = parse_expr_prec st in
      expect_kw st "then";
      let t = parse_expr_prec st in
      let e = arms () in
      If (c, t, e)
    | Lexer.KW "else" ->
      advance st;
      let e = parse_expr_prec st in
      expect_kw st "endif";
      e
    | t -> error st ("expected else/elseif, found " ^ Lexer.token_name t)
  in
  let else_e = arms () in
  If (cond, then_e, else_e)

(* Definition lists: [name (: type)? := expr ;] repeated until [stop] (the
   terminating [;] before [stop] is optional, matching the paper style). *)
and parse_defs st ~stop =
  let rec loop acc =
    if peek st = stop then List.rev acc
    else begin
      let def_name = expect_ident st in
      let def_type =
        if peek st = Lexer.COLON then begin
          advance st;
          Some (parse_type st)
        end
        else None
      in
      expect st Lexer.ASSIGN;
      let def_rhs = parse_expr_prec st in
      if peek st = Lexer.SEMI then advance st
      else if peek st <> stop then
        error st
          (Printf.sprintf "expected ; or %s after definition of %s"
             (Lexer.token_name stop) def_name);
      loop ({ def_name; def_type; def_rhs } :: acc)
    end
  in
  loop []

(* ------------------------------------------------------------------ *)
(* forall                                                               *)
(* ------------------------------------------------------------------ *)

let parse_range st =
  let rng_var = expect_ident st in
  expect_kw st "in";
  expect st Lexer.LBRACKET;
  let rng_lo = parse_cexpr st in
  expect st Lexer.COMMA;
  let rng_hi = parse_cexpr st in
  expect st Lexer.RBRACKET;
  { rng_var; rng_lo; rng_hi }

let parse_forall st =
  expect_kw st "forall";
  let rec ranges acc =
    let r = parse_range st in
    if peek st = Lexer.COMMA then begin
      advance st;
      ranges (r :: acc)
    end
    else List.rev (r :: acc)
  in
  let fa_ranges = ranges [] in
  let fa_defs = parse_defs st ~stop:(Lexer.KW "construct") in
  expect_kw st "construct";
  let fa_body = parse_expr_prec st in
  expect_kw st "endall";
  { fa_ranges; fa_defs; fa_body }

(* ------------------------------------------------------------------ *)
(* for-iter                                                             *)
(* ------------------------------------------------------------------ *)

let parse_loop_init st =
  let name = expect_ident st in
  expect st Lexer.COLON;
  let ty = parse_type st in
  expect st Lexer.ASSIGN;
  (* An array initialization [r: E] vs. a scalar initial expression.  A
     leading '[' can only be the former, since expressions never start
     with '['. *)
  if peek st = Lexer.LBRACKET then begin
    advance st;
    let r = parse_cexpr st in
    expect st Lexer.COLON;
    let e = parse_expr_prec st in
    expect st Lexer.RBRACKET;
    Init_array (name, Some ty, r, e)
  end
  else Init_scalar (name, Some ty, parse_expr_prec st)

(* [x := T[i: P]] (append) vs [x := e] (scalar update): both start with
   IDENT := IDENT [ ..., so disambiguate by backtracking on the ':' that
   separates index from element inside the brackets. *)
let parse_update st =
  let name = expect_ident st in
  expect st Lexer.ASSIGN;
  let saved = st.pos in
  let try_append () =
    match peek st with
    | Lexer.IDENT arr when peek_ahead st 1 = Lexer.LBRACKET ->
      advance st;
      advance st;
      (* tolerate failures: backtrack to scalar-update parse *)
      (try
         let ix = parse_index st in
         if peek st = Lexer.COLON then begin
           advance st;
           let e = parse_expr_prec st in
           expect st Lexer.RBRACKET;
           Some (name, Upd_append (arr, ix, e))
         end
         else None
       with Parse_error _ -> None)
    | _ -> None
  in
  match try_append () with
  | Some upd -> upd
  | None ->
    st.pos <- saved;
    (name, Upd_expr (parse_expr_prec st))

let rec parse_iter_body st =
  match peek st with
  | Lexer.KW "let" ->
    advance st;
    let defs = parse_defs st ~stop:(Lexer.KW "in") in
    expect_kw st "in";
    let body = parse_iter_body st in
    expect_kw st "endlet";
    Iter_let (defs, body)
  | Lexer.KW "if" ->
    advance st;
    let cond = parse_expr_prec st in
    expect_kw st "then";
    let then_b = parse_iter_body st in
    let rec arms () =
      match peek st with
      | Lexer.KW "elseif" ->
        advance st;
        let c = parse_expr_prec st in
        expect_kw st "then";
        let t = parse_iter_body st in
        let e = arms () in
        Iter_if (c, t, e)
      | Lexer.KW "else" ->
        advance st;
        let e = parse_iter_body st in
        expect_kw st "endif";
        e
      | t -> error st ("expected else/elseif, found " ^ Lexer.token_name t)
    in
    let else_b = arms () in
    Iter_if (cond, then_b, else_b)
  | Lexer.KW "iter" ->
    advance st;
    let rec updates acc =
      let u = parse_update st in
      if peek st = Lexer.SEMI then begin
        advance st;
        if at_kw st "enditer" then List.rev (u :: acc)
        else updates (u :: acc)
      end
      else List.rev (u :: acc)
    in
    let us = updates [] in
    expect_kw st "enditer";
    Iter_continue us
  | _ -> Iter_result (parse_expr_prec st)

let parse_foriter st =
  expect_kw st "for";
  let rec inits acc =
    let i = parse_loop_init st in
    if peek st = Lexer.SEMI then begin
      advance st;
      if at_kw st "do" then List.rev (i :: acc) else inits (i :: acc)
    end
    else List.rev (i :: acc)
  in
  let fi_inits = inits [] in
  expect_kw st "do";
  let fi_body = parse_iter_body st in
  expect_kw st "endfor";
  { fi_inits; fi_body }

(* ------------------------------------------------------------------ *)
(* Blocks and programs                                                  *)
(* ------------------------------------------------------------------ *)

let parse_block_st st =
  let blk_name = expect_ident st in
  expect st Lexer.COLON;
  let blk_type = parse_type st in
  expect st Lexer.ASSIGN;
  let blk_rhs =
    if at_kw st "forall" then Forall (parse_forall st)
    else if at_kw st "for" then Foriter (parse_foriter st)
    else error st "expected forall or for-iter block body"
  in
  if peek st = Lexer.SEMI then advance st;
  { blk_name; blk_type; blk_rhs }

let parse_decl st =
  if at_kw st "param" then begin
    advance st;
    let name = expect_ident st in
    expect st Lexer.EQ;
    let v = parse_cexpr st in
    if peek st = Lexer.SEMI then advance st;
    `Param (name, v)
  end
  else begin
    expect_kw st "input";
    let in_name = expect_ident st in
    expect st Lexer.COLON;
    let in_type = parse_type st in
    let rec ranges acc =
      if peek st = Lexer.LBRACKET then begin
        advance st;
        let lo = parse_cexpr st in
        expect st Lexer.COMMA;
        let hi = parse_cexpr st in
        expect st Lexer.RBRACKET;
        ranges ((lo, hi) :: acc)
      end
      else List.rev acc
    in
    let in_ranges = ranges [] in
    if peek st = Lexer.SEMI then advance st;
    `Input { in_name; in_type; in_ranges }
  end

let parse_program_st st =
  let rec decls params inputs =
    if at_kw st "param" || at_kw st "input" then
      match parse_decl st with
      | `Param p -> decls (p :: params) inputs
      | `Input i -> decls params (i :: inputs)
    else (List.rev params, List.rev inputs)
  in
  let prog_params, prog_inputs = decls [] [] in
  let rec blocks acc =
    if peek st = Lexer.EOF then List.rev acc
    else blocks (parse_block_st st :: acc)
  in
  let prog_blocks = blocks [] in
  { prog_params; prog_inputs; prog_blocks }

let make_state src = { toks = Array.of_list (Lexer.tokenize src); pos = 0 }

let finish st v =
  if peek st = Lexer.EOF then v
  else error st ("unexpected trailing input: " ^ Lexer.token_name (peek st))

let wrap_lex_error f =
  try f ()
  with Lexer.Lex_error (msg, line, col) -> raise (Parse_error (msg, line, col))

let parse_program src =
  wrap_lex_error (fun () ->
      let st = make_state src in
      finish st (parse_program_st st))

let parse_expr src =
  wrap_lex_error (fun () ->
      let st = make_state src in
      finish st (parse_expr_prec st))

let parse_block src =
  wrap_lex_error (fun () ->
      let st = make_state src in
      finish st (parse_block_st st))
