(** Recursive-descent parser for the Val subset.

    Grammar (informal):
    {v
    program  ::= decl* block*
    decl     ::= "param" IDENT "=" cexpr ";"
               | "input" IDENT ":" type ("[" cexpr "," cexpr "]")* ";"
    type     ::= "integer" | "real" | "boolean" | "array" "[" scalar "]"
    block    ::= IDENT ":" type ":=" (forall | foriter) ";"?
    forall   ::= "forall" range ("," range)* def* "construct" expr "endall"
    range    ::= IDENT "in" "[" cexpr "," cexpr "]"
    def      ::= IDENT (":" type)? ":=" expr ";"
    foriter  ::= "for" init (";" init)* "do" iterbody "endfor"
    init     ::= IDENT ":" type ":=" ("[" cexpr ":" expr "]" | expr)
    iterbody ::= "let" def* "in" iterbody "endlet"
               | "if" expr "then" iterbody
                 ("elseif" expr "then" iterbody)* "else" iterbody "endif"
               | "iter" update (";" update)* "enditer"
               | expr
    update   ::= IDENT ":=" IDENT "[" index ":" expr "]"
               | IDENT ":=" expr
    v}
    Expressions use the paper's operators with conventional precedence:
    [|] < [&] < comparisons < [+ -] < [* /] < unary [- ~]; [min]/[max] are
    two-argument prefix functions; [%] starts a line comment. *)

exception Parse_error of string * int * int
(** [Parse_error (msg, line, col)]. *)

val parse_program : string -> Ast.program
(** Parse a complete source file. @raise Parse_error *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (must consume all input). @raise Parse_error *)

val parse_block : string -> Ast.block
(** Parse a single array-defining block. @raise Parse_error *)
