(** Reference interpreter for the Val subset.

    This is the semantic oracle: every compiled-and-simulated program must
    produce exactly the values this interpreter produces.  It executes
    [forall] by independent element evaluation and [for-iter] by literal
    iteration, with no pipelining — functional semantics only. *)

exception Error of string

type value =
  | VInt of int
  | VReal of float
  | VBool of bool
  | VArray of varray
  | VGrid of vgrid  (* 2-D array, for the paper's multi-dimension remark *)

and varray = { lo : int; elts : value array }

and vgrid = { lo_i : int; lo_j : int; rows : value array array }

val value_equal : ?eps:float -> value -> value -> bool
(** Structural equality with tolerance [eps] (default [1e-9]) on reals. *)

val pp_value : Format.formatter -> value -> unit

val to_real : value -> float
(** Numeric coercion. @raise Error on non-numeric values. *)

val varray_of_floats : lo:int -> float list -> value
val varray_of_ints : lo:int -> int list -> value
val floats_of_varray : value -> float list
(** @raise Error if the value is not a 1-D numeric array. *)

type env
(** Evaluation environment: scalar and array bindings. *)

val env_of_bindings : (string * value) list -> env

val eval_expr : env -> Ast.expr -> value
(** Evaluate a scalar expression. @raise Error *)

val eval_block : params:(string * int) list -> env -> Ast.block -> value
(** Evaluate one array-defining block. @raise Error *)

val eval_program :
  inputs:(string * value) list -> Ast.program -> (string * value) list
(** Evaluate all blocks in order; returns every block's value (last entry is
    the program result).  [param] declarations are evaluated first and enter
    scope as integer scalars. @raise Error *)
