open Ast

exception Error of string

type value =
  | VInt of int
  | VReal of float
  | VBool of bool
  | VArray of varray
  | VGrid of vgrid

and varray = { lo : int; elts : value array }

and vgrid = { lo_i : int; lo_j : int; rows : value array array }

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let to_real = function
  | VInt i -> float_of_int i
  | VReal f -> f
  | VBool _ -> errf "boolean used as a number"
  | VArray _ | VGrid _ -> errf "array used as a number"

let rec value_equal ?(eps = 1e-9) a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VBool x, VBool y -> x = y
  | (VInt _ | VReal _), (VInt _ | VReal _) ->
    Float.abs (to_real a -. to_real b) <= eps
  | VArray x, VArray y ->
    x.lo = y.lo
    && Array.length x.elts = Array.length y.elts
    && Array.for_all2 (value_equal ~eps) x.elts y.elts
  | VGrid x, VGrid y ->
    x.lo_i = y.lo_i && x.lo_j = y.lo_j
    && Array.length x.rows = Array.length y.rows
    && Array.for_all2
         (fun r1 r2 ->
           Array.length r1 = Array.length r2
           && Array.for_all2 (value_equal ~eps) r1 r2)
         x.rows y.rows
  | _ -> false

let rec pp_value ppf = function
  | VInt i -> Format.fprintf ppf "%d" i
  | VReal f -> Format.fprintf ppf "%g" f
  | VBool b -> Format.fprintf ppf "%b" b
  | VArray { lo; elts } ->
    Format.fprintf ppf "[%d:" lo;
    Array.iter (fun v -> Format.fprintf ppf " %a" pp_value v) elts;
    Format.fprintf ppf "]"
  | VGrid { lo_i; lo_j; rows } ->
    Format.fprintf ppf "[%d,%d:" lo_i lo_j;
    Array.iter
      (fun row ->
        Format.fprintf ppf " [";
        Array.iter (fun v -> Format.fprintf ppf " %a" pp_value v) row;
        Format.fprintf ppf "]")
      rows;
    Format.fprintf ppf "]"

let varray_of_floats ~lo xs =
  VArray { lo; elts = Array.of_list (List.map (fun f -> VReal f) xs) }

let varray_of_ints ~lo xs =
  VArray { lo; elts = Array.of_list (List.map (fun i -> VInt i) xs) }

let floats_of_varray = function
  | VArray { elts; _ } -> Array.to_list (Array.map to_real elts)
  | VInt _ | VReal _ | VBool _ | VGrid _ -> errf "expected a 1-D array value"

type env = (string * value) list

let env_of_bindings bindings = bindings

let lookup env name =
  match List.assoc_opt name env with
  | Some v -> v
  | None -> errf "unbound identifier %s at evaluation time" name

let arith op a b =
  (* Integer arithmetic is exact when both operands are integers; any real
     operand promotes the operation to floating point. *)
  match (a, b) with
  | VInt x, VInt y -> (
    match op with
    | Add -> VInt (x + y)
    | Sub -> VInt (x - y)
    | Mul -> VInt (x * y)
    | Div ->
      if y = 0 then errf "integer division by zero" else VInt (x / y)
    | Min -> VInt (min x y)
    | Max -> VInt (max x y)
    | _ -> assert false)
  | _ ->
    let x = to_real a and y = to_real b in
    let f =
      match op with
      | Add -> x +. y
      | Sub -> x -. y
      | Mul -> x *. y
      | Div -> x /. y
      | Min -> Float.min x y
      | Max -> Float.max x y
      | _ -> assert false
    in
    VReal f

let compare_vals op a b =
  let c =
    match (a, b) with
    | VInt x, VInt y -> compare x y
    | VBool x, VBool y -> compare x y
    | _ -> compare (to_real a) (to_real b)
  in
  let r =
    match op with
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0
    | Eq -> c = 0
    | Ne -> c <> 0
    | _ -> assert false
  in
  VBool r

let as_bool = function
  | VBool b -> b
  | VInt _ | VReal _ | VArray _ | VGrid _ ->
    errf "expected a boolean value"

let index_value env = function
  | Ix_var (v, off) -> (
    match lookup env v with
    | VInt i -> i + off
    | _ -> errf "index variable %s is not an integer" v)
  | Ix_const ce ->
    (* Params are bound in the environment as VInt. *)
    let rec go = function
      | C_int i -> i
      | C_name n -> (
        match lookup env n with
        | VInt i -> i
        | _ -> errf "constant name %s is not an integer" n)
      | C_add (a, b) -> go a + go b
      | C_sub (a, b) -> go a - go b
      | C_mul (a, b) -> go a * go b
    in
    go ce

let select_array name arr_value indices =
  match (arr_value, indices) with
  | VArray { lo; elts }, [ i ] ->
    let k = i - lo in
    if k < 0 || k >= Array.length elts then
      errf "index %d out of range for array %s [%d, %d]" i name lo
        (lo + Array.length elts - 1)
    else elts.(k)
  | VGrid { lo_i; lo_j; rows }, [ i; j ] ->
    let ki = i - lo_i in
    if ki < 0 || ki >= Array.length rows then
      errf "row index %d out of range for grid %s" i name
    else
      let row = rows.(ki) in
      let kj = j - lo_j in
      if kj < 0 || kj >= Array.length row then
        errf "column index %d out of range for grid %s" j name
      else row.(kj)
  | VArray _, _ -> errf "array %s selected with %d subscripts" name 2
  | VGrid _, _ -> errf "grid %s needs two subscripts" name
  | _ -> errf "%s is not an array" name

let rec eval_expr env expr =
  match expr with
  | Int_lit i -> VInt i
  | Real_lit f -> VReal f
  | Bool_lit b -> VBool b
  | Var name -> lookup env name
  | Binop (op, a, b) when is_arith op ->
    arith op (eval_expr env a) (eval_expr env b)
  | Binop (op, a, b) when is_compare op ->
    compare_vals op (eval_expr env a) (eval_expr env b)
  | Binop (And, a, b) ->
    (* Val's & and | are strict (both operands are computed in the dataflow
       graph), so evaluate both here as well. *)
    let x = as_bool (eval_expr env a) in
    let y = as_bool (eval_expr env b) in
    VBool (x && y)
  | Binop (Or, a, b) ->
    let x = as_bool (eval_expr env a) in
    let y = as_bool (eval_expr env b) in
    VBool (x || y)
  | Binop _ -> assert false
  | Unop (Neg, a) -> (
    match eval_expr env a with
    | VInt i -> VInt (-i)
    | VReal f -> VReal (-.f)
    | _ -> errf "unary - applied to a non-number")
  | Unop (Not, a) -> VBool (not (as_bool (eval_expr env a)))
  | Unop (Fn Abs, a) -> (
    match eval_expr env a with
    | VInt i -> VInt (abs i)
    | v -> VReal (Float.abs (to_real v)))
  | Unop (Fn f, a) ->
    let x = to_real (eval_expr env a) in
    VReal
      (match f with
      | Sqrt -> sqrt x
      | Exp -> exp x
      | Ln -> log x
      | Sin -> sin x
      | Cos -> cos x
      | Abs -> assert false)
  | Select (name, indices) ->
    let arr = lookup env name in
    let ixs = List.map (index_value env) indices in
    select_array name arr ixs
  | Let (defs, body) ->
    let env =
      List.fold_left
        (fun env { def_name; def_rhs; _ } ->
          (def_name, eval_expr env def_rhs) :: env)
        env defs
    in
    eval_expr env body
  | If (c, t, e) ->
    if as_bool (eval_expr env c) then eval_expr env t else eval_expr env e

let eval_forall ~params env fa =
  let const ce = Typecheck.eval_const params ce in
  match fa.fa_ranges with
  | [ { rng_var; rng_lo; rng_hi } ] ->
    let lo = const rng_lo and hi = const rng_hi in
    if hi < lo then errf "empty forall range [%d, %d]" lo hi;
    let elt i =
      let env = (rng_var, VInt i) :: env in
      let env =
        List.fold_left
          (fun env { def_name; def_rhs; _ } ->
            (def_name, eval_expr env def_rhs) :: env)
          env fa.fa_defs
      in
      eval_expr env fa.fa_body
    in
    VArray { lo; elts = Array.init (hi - lo + 1) (fun k -> elt (lo + k)) }
  | [ ri; rj ] ->
    let lo_i = const ri.rng_lo and hi_i = const ri.rng_hi in
    let lo_j = const rj.rng_lo and hi_j = const rj.rng_hi in
    if hi_i < lo_i || hi_j < lo_j then errf "empty 2-D forall range";
    let elt i j =
      let env = (ri.rng_var, VInt i) :: (rj.rng_var, VInt j) :: env in
      let env =
        List.fold_left
          (fun env { def_name; def_rhs; _ } ->
            (def_name, eval_expr env def_rhs) :: env)
          env fa.fa_defs
      in
      eval_expr env fa.fa_body
    in
    VGrid
      {
        lo_i;
        lo_j;
        rows =
          Array.init
            (hi_i - lo_i + 1)
            (fun ki ->
              Array.init (hi_j - lo_j + 1) (fun kj -> elt (lo_i + ki) (lo_j + kj)));
      }
  | _ -> errf "forall must have one or two index ranges"

(* Mutable accumulator arrays during loop execution: Val's X := X[i: P] is
   applicatively a fresh array, but since the old value is dead afterwards
   we represent loop arrays as growable (index, value) assoc built in
   order. *)
type loop_array = { mutable cells : (int * value) list (* newest first *) }

let eval_foriter ~params env fi =
  ignore params;
  let scalar_state = Hashtbl.create 8 in
  let array_state = Hashtbl.create 4 in
  let env_with_state () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) scalar_state env
  in
  List.iter
    (fun init ->
      match init with
      | Init_scalar (name, _, rhs) ->
        Hashtbl.replace scalar_state name (eval_expr (env_with_state ()) rhs)
      | Init_array (name, _, r, e) ->
        let r =
          Typecheck.eval_const
            (List.filter_map
               (fun (n, v) -> match v with VInt i -> Some (n, i) | _ -> None)
               env)
            r
        in
        let v = eval_expr (env_with_state ()) e in
        Hashtbl.replace array_state name { cells = [ (r, v) ] })
    fi.fi_inits;
  let lookup_loop_array name =
    match Hashtbl.find_opt array_state name with
    | Some la -> la
    | None -> errf "unknown loop array %s" name
  in
  (* Environment for expression evaluation: loop arrays are exposed as
     VArray snapshots (cheap enough for the test-scale loops we run). *)
  let snapshot la =
    let cells = List.sort (fun (i, _) (j, _) -> compare i j) la.cells in
    match cells with
    | [] -> errf "empty loop array"
    | (lo, _) :: _ ->
      let hi = fst (List.nth cells (List.length cells - 1)) in
      let elts = Array.make (hi - lo + 1) (VInt 0) in
      List.iter (fun (i, v) -> elts.(i - lo) <- v) cells;
      VArray { lo; elts }
  in
  let full_env () =
    Hashtbl.fold
      (fun k la acc -> (k, snapshot la) :: acc)
      array_state (env_with_state ())
  in
  let max_cycles = 10_000_000 in
  let rec run body cycles =
    if cycles > max_cycles then errf "for-iter exceeded %d cycles" max_cycles;
    let rec step env body =
      match body with
      | Iter_let (defs, rest) ->
        let env =
          List.fold_left
            (fun env { def_name; def_rhs; _ } ->
              (def_name, eval_expr env def_rhs) :: env)
            env defs
        in
        step env rest
      | Iter_if (c, t, e) ->
        if as_bool (eval_expr env c) then step env t else step env e
      | Iter_continue updates ->
        (* All RHS are evaluated in the pre-update environment (Val's
           simultaneous rebinding semantics). *)
        let staged =
          List.map
            (fun (name, upd) ->
              match upd with
              | Upd_expr rhs -> `Scalar (name, eval_expr env rhs)
              | Upd_append (arr, ix, e) ->
                let i = index_value env ix in
                `Append (arr, i, eval_expr env e))
            updates
        in
        List.iter
          (function
            | `Scalar (name, v) -> Hashtbl.replace scalar_state name v
            | `Append (arr, i, v) ->
              let la = lookup_loop_array arr in
              la.cells <- (i, v) :: la.cells)
          staged;
        `Continue
      | Iter_result e -> `Done (eval_expr env e)
    in
    match step (full_env ()) body with
    | `Continue -> run body (cycles + 1)
    | `Done v -> v
  in
  run fi.fi_body 0

let eval_block ~params env blk =
  match blk.blk_rhs with
  | Forall fa -> eval_forall ~params env fa
  | Foriter fi -> eval_foriter ~params env fi

let eval_program ~inputs prog =
  let params =
    List.fold_left
      (fun acc (name, ce) -> (name, Typecheck.eval_const acc ce) :: acc)
      [] prog.prog_params
  in
  let env0 = List.map (fun (n, v) -> (n, VInt v)) params @ inputs in
  List.iter
    (fun inp ->
      if not (List.mem_assoc inp.in_name env0) then
        errf "missing input binding for %s" inp.in_name)
    prog.prog_inputs;
  let _, results =
    List.fold_left
      (fun (env, results) blk ->
        let v = eval_block ~params env blk in
        ((blk.blk_name, v) :: env, (blk.blk_name, v) :: results))
      (env0, []) prog.prog_blocks
  in
  List.rev results
