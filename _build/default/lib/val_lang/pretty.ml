open Ast

let real_literal f =
  let s = Printf.sprintf "%.12g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
  else s ^ "."

let rec pp_cexpr ppf = function
  | C_int i -> Format.fprintf ppf "%d" i
  | C_name n -> Format.fprintf ppf "%s" n
  | C_add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_cexpr a pp_cexpr b
  | C_sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_cexpr a pp_cexpr b
  | C_mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_cexpr a pp_cexpr b

let pp_index ppf = function
  | Ix_var (v, 0) -> Format.fprintf ppf "%s" v
  | Ix_var (v, k) when k > 0 -> Format.fprintf ppf "%s+%d" v k
  | Ix_var (v, k) -> Format.fprintf ppf "%s-%d" v (-k)
  | Ix_const ce -> pp_cexpr ppf ce

let pp_type ppf = function
  | Scalar st -> Format.fprintf ppf "%s" (scalar_type_name st)
  | Array st -> Format.fprintf ppf "array[%s]" (scalar_type_name st)

let rec pp_expr ppf = function
  | Int_lit i -> Format.fprintf ppf "%d" i
  | Real_lit f -> Format.fprintf ppf "%s" (real_literal f)
  | Bool_lit b -> Format.fprintf ppf "%s" (if b then "true" else "false")
  | Var v -> Format.fprintf ppf "%s" v
  | Binop ((Min | Max) as op, a, b) ->
    Format.fprintf ppf "%s(%a, %a)"
      (match op with Min -> "min" | _ -> "max")
      pp_expr a pp_expr b
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Unop (Fn f, a) ->
    Format.fprintf ppf "%s(%a)" (math_fn_name f) pp_expr a
  | Unop (op, a) -> Format.fprintf ppf "(%s%a)" (unop_name op) pp_expr a
  | Select (name, ixs) ->
    Format.fprintf ppf "%s[%a]" name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_index)
      ixs
  | Let (defs, body) ->
    Format.fprintf ppf "@[<v 2>let %a@ in %a endlet@]" pp_defs defs pp_expr
      body
  | If (c, t, e) ->
    Format.fprintf ppf "@[<v 2>if %a@ then %a@ else %a@ endif@]" pp_expr c
      pp_expr t pp_expr e

and pp_def ppf { def_name; def_type; def_rhs } =
  match def_type with
  | Some ty ->
    Format.fprintf ppf "%s : %a := %a" def_name pp_type ty pp_expr def_rhs
  | None -> Format.fprintf ppf "%s := %a" def_name pp_expr def_rhs

and pp_defs ppf defs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
    pp_def ppf defs

let pp_range ppf { rng_var; rng_lo; rng_hi } =
  Format.fprintf ppf "%s in [%a, %a]" rng_var pp_cexpr rng_lo pp_cexpr rng_hi

let pp_forall ppf fa =
  Format.fprintf ppf "@[<v 2>forall %a@ "
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_range)
    fa.fa_ranges;
  if fa.fa_defs <> [] then Format.fprintf ppf "%a;@ " pp_defs fa.fa_defs;
  Format.fprintf ppf "construct@ %a@ endall@]" pp_expr fa.fa_body

let pp_loop_init ppf = function
  | Init_scalar (name, ty, e) ->
    (match ty with
    | Some ty ->
      Format.fprintf ppf "%s : %a := %a" name pp_type ty pp_expr e
    | None -> Format.fprintf ppf "%s := %a" name pp_expr e)
  | Init_array (name, ty, r, e) ->
    (match ty with
    | Some ty ->
      Format.fprintf ppf "%s : %a := [%a: %a]" name pp_type ty pp_cexpr r
        pp_expr e
    | None -> Format.fprintf ppf "%s := [%a: %a]" name pp_cexpr r pp_expr e)

let rec pp_iter_body ppf = function
  | Iter_let (defs, rest) ->
    Format.fprintf ppf "@[<v 2>let %a@ in %a endlet@]" pp_defs defs
      pp_iter_body rest
  | Iter_if (c, t, e) ->
    Format.fprintf ppf "@[<v 2>if %a@ then %a@ else %a@ endif@]" pp_expr c
      pp_iter_body t pp_iter_body e
  | Iter_continue updates ->
    let pp_update ppf (name, upd) =
      match upd with
      | Upd_expr e -> Format.fprintf ppf "%s := %a" name pp_expr e
      | Upd_append (arr, ix, e) ->
        Format.fprintf ppf "%s := %s[%a: %a]" name arr pp_index ix pp_expr e
    in
    Format.fprintf ppf "iter %a enditer"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         pp_update)
      updates
  | Iter_result e -> pp_expr ppf e

let pp_foriter ppf fi =
  Format.fprintf ppf "@[<v 2>for %a@ do@ %a@ endfor@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_loop_init)
    fi.fi_inits pp_iter_body fi.fi_body

let pp_block ppf blk =
  Format.fprintf ppf "@[<v>%s : %a :=@ %a;@]" blk.blk_name pp_type
    blk.blk_type
    (fun ppf -> function
      | Forall fa -> pp_forall ppf fa
      | Foriter fi -> pp_foriter ppf fi)
    blk.blk_rhs

let pp_program ppf prog =
  List.iter
    (fun (name, ce) ->
      Format.fprintf ppf "param %s = %a;@\n" name pp_cexpr ce)
    prog.prog_params;
  List.iter
    (fun inp ->
      Format.fprintf ppf "input %s : %a" inp.in_name pp_type inp.in_type;
      List.iter
        (fun (lo, hi) ->
          Format.fprintf ppf " [%a, %a]" pp_cexpr lo pp_cexpr hi)
        inp.in_ranges;
      Format.fprintf ppf ";@\n")
    prog.prog_inputs;
  List.iter (fun blk -> Format.fprintf ppf "%a@\n@\n" pp_block blk)
    prog.prog_blocks

let to_string pp x = Format.asprintf "%a" pp x
let expr_to_string = to_string pp_expr
let block_to_string = to_string pp_block
let program_to_string = to_string pp_program
