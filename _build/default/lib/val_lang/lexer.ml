type token =
  | INT of int
  | REAL of float
  | IDENT of string
  | KW of string
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH
  | LT | LE | GT | GE | EQ | NE
  | AMP | BAR | TILDE
  | EOF

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int

let keywords =
  [
    "forall"; "in"; "construct"; "endall";
    "for"; "do"; "iter"; "enditer"; "endfor";
    "if"; "then"; "else"; "elseif"; "endif";
    "let"; "endlet";
    "array"; "integer"; "real"; "boolean";
    "param"; "input";
    "min"; "max"; "true"; "false";
    "sqrt"; "abs"; "exp"; "ln"; "sin"; "cos";
  ]

let is_keyword s = List.mem s keywords

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

type cursor = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek cur =
  if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let peek2 cur =
  if cur.pos + 1 < String.length cur.src then Some cur.src.[cur.pos + 1]
  else None

let advance cur =
  (match peek cur with
  | Some '\n' ->
    cur.line <- cur.line + 1;
    cur.col <- 1
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.pos <- cur.pos + 1

let rec skip_blank_and_comments cur =
  match peek cur with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance cur;
    skip_blank_and_comments cur
  | Some '%' ->
    let rec to_eol () =
      match peek cur with
      | Some '\n' | None -> ()
      | Some _ ->
        advance cur;
        to_eol ()
    in
    to_eol ();
    skip_blank_and_comments cur
  | Some _ | None -> ()

let lex_number cur =
  let line = cur.line and col = cur.col in
  let start = cur.pos in
  while (match peek cur with Some c -> is_digit c | None -> false) do
    advance cur
  done;
  let is_real =
    (* A '.' makes it real, but ".." would be a range operator (unused in
       this subset) so only a dot NOT followed by another dot counts. *)
    match (peek cur, peek2 cur) with
    | Some '.', Some '.' -> false
    | Some '.', _ -> true
    | _ -> false
  in
  if is_real then begin
    advance cur;
    while (match peek cur with Some c -> is_digit c | None -> false) do
      advance cur
    done;
    (* optional exponent *)
    (match (peek cur, peek2 cur) with
    | Some ('e' | 'E'), Some c when is_digit c || c = '+' || c = '-' ->
      advance cur;
      (match peek cur with
      | Some ('+' | '-') -> advance cur
      | _ -> ());
      while (match peek cur with Some c -> is_digit c | None -> false) do
        advance cur
      done
    | _ -> ());
    let text = String.sub cur.src start (cur.pos - start) in
    match float_of_string_opt text with
    | Some f -> { tok = REAL f; line; col }
    | None -> raise (Lex_error ("malformed real literal " ^ text, line, col))
  end
  else begin
    let text = String.sub cur.src start (cur.pos - start) in
    match int_of_string_opt text with
    | Some i -> { tok = INT i; line; col }
    | None -> raise (Lex_error ("malformed integer literal " ^ text, line, col))
  end

let lex_ident cur =
  let line = cur.line and col = cur.col in
  let start = cur.pos in
  while (match peek cur with Some c -> is_ident_char c | None -> false) do
    advance cur
  done;
  let text = String.sub cur.src start (cur.pos - start) in
  let tok = if is_keyword text then KW text else IDENT text in
  { tok; line; col }

let lex_symbol cur =
  let line = cur.line and col = cur.col in
  let simple tok =
    advance cur;
    { tok; line; col }
  in
  let two_char tok =
    advance cur;
    advance cur;
    { tok; line; col }
  in
  match peek cur with
  | Some '(' -> simple LPAREN
  | Some ')' -> simple RPAREN
  | Some '[' -> simple LBRACKET
  | Some ']' -> simple RBRACKET
  | Some ',' -> simple COMMA
  | Some ';' -> simple SEMI
  | Some ':' -> (
    match peek2 cur with
    | Some '=' -> two_char ASSIGN
    | _ -> simple COLON)
  | Some '+' -> simple PLUS
  | Some '-' -> simple MINUS
  | Some '*' -> simple STAR
  | Some '/' -> simple SLASH
  | Some '<' -> (
    match peek2 cur with
    | Some '=' -> two_char LE
    | _ -> simple LT)
  | Some '>' -> (
    match peek2 cur with
    | Some '=' -> two_char GE
    | _ -> simple GT)
  | Some '=' -> simple EQ
  | Some '~' -> (
    match peek2 cur with
    | Some '=' -> two_char NE
    | _ -> simple TILDE)
  | Some '&' -> simple AMP
  | Some '|' -> simple BAR
  | Some c ->
    raise (Lex_error (Printf.sprintf "illegal character %C" c, line, col))
  | None -> { tok = EOF; line; col }

let tokenize src =
  let cur = { src; pos = 0; line = 1; col = 1 } in
  let rec loop acc =
    skip_blank_and_comments cur;
    match peek cur with
    | None -> List.rev ({ tok = EOF; line = cur.line; col = cur.col } :: acc)
    | Some c when is_digit c -> loop (lex_number cur :: acc)
    | Some c when is_ident_start c -> loop (lex_ident cur :: acc)
    | Some _ -> loop (lex_symbol cur :: acc)
  in
  loop []

let token_name = function
  | INT i -> Printf.sprintf "integer %d" i
  | REAL f -> Printf.sprintf "real %g" f
  | IDENT s -> Printf.sprintf "identifier %s" s
  | KW s -> Printf.sprintf "keyword %s" s
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | COMMA -> "," | SEMI -> ";" | COLON -> ":"
  | ASSIGN -> ":="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQ -> "=" | NE -> "~="
  | AMP -> "&" | BAR -> "|" | TILDE -> "~"
  | EOF -> "end of input"
