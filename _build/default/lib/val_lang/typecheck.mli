(** Static checking of Val-subset programs.

    Checks name scoping, operator typing (with implicit [integer]→[real]
    promotion, matching the paper's listings which write [T := [0: 0]] for a
    real array), array-select element types, and that every block references
    only inputs and previously defined blocks (so the flow dependency graph
    is acyclic by construction).

    Range resolution for compilation lives in {!Classify}; here only
    compile-time constants ([param]s) are evaluated. *)

exception Error of string

type scalar_env = (string * Ast.scalar_type) list
(** Scalar variables in scope (includes the index variables, of type
    integer). *)

type array_env = (string * Ast.scalar_type) list
(** Array variables in scope, mapped to their element type. *)

val eval_const : (string * int) list -> Ast.const_expr -> int
(** Evaluate a compile-time constant under parameter bindings.
    @raise Error on an unbound name. *)

val promote : Ast.scalar_type -> Ast.scalar_type -> Ast.scalar_type
(** Least common type of two numeric operands ([integer]→[real]).
    @raise Error when the two types cannot be combined. *)

val check_expr :
  scalars:scalar_env -> arrays:array_env -> Ast.expr -> Ast.scalar_type
(** Type of a (necessarily scalar-valued) expression.
    @raise Error on ill-typed or unbound constructs. *)

val check_program : Ast.program -> unit
(** Check a whole program. @raise Error *)
