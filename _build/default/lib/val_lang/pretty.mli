(** Pretty-printing of the Val subset back to concrete syntax.

    Output re-parses to an equal AST (up to redundant parentheses), which
    the round-trip property tests rely on. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_block : Format.formatter -> Ast.block -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val expr_to_string : Ast.expr -> string
val block_to_string : Ast.block -> string
val program_to_string : Ast.program -> string
