lib/val_lang/classify.ml: Ast List Option Printf Typecheck
