lib/val_lang/parser.mli: Ast
