lib/val_lang/eval.ml: Array Ast Float Format Hashtbl List Printf Typecheck
