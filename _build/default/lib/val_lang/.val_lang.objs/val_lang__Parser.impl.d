lib/val_lang/parser.ml: Array Ast Lexer List Printf
