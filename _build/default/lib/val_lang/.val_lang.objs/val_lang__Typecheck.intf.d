lib/val_lang/typecheck.mli: Ast
