lib/val_lang/classify.mli: Ast
