lib/val_lang/typecheck.ml: Ast List Printf
