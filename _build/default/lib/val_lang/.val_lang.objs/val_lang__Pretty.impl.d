lib/val_lang/pretty.ml: Ast Format List Printf String
