lib/val_lang/eval.mli: Ast Format
