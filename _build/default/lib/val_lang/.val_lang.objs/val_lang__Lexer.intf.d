lib/val_lang/lexer.mli:
