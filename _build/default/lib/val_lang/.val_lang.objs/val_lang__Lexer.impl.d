lib/val_lang/lexer.ml: List Printf String
