lib/val_lang/ast.ml:
