lib/val_lang/pretty.mli: Ast Format
