(** Abstract syntax for the Val subset of Dennis & Gao (ICPP'83).

    The subset covers exactly the constructs the paper compiles:
    - primitive expressions (literals, identifiers, arithmetic/relational/
      boolean operators, array selection [A[i+m]], [let-in], [if-then-else]);
    - [forall] array constructors (Example 1 of the paper), extended to
      multi-index ranges for the paper's "multiple dimensions" remark;
    - [for-iter] array constructors restricted to the paper's primitive
      shape (Example 2): an integer counter, an accumulating array, and a
      conditional body whose [iter] arm appends one element per cycle;
    - programs: named [param]/[input] declarations followed by a sequence of
      blocks, each defining one array — the paper's pipe-structured form.

    Structural restrictions beyond grammar (constant ranges, primitivity,
    companion-function existence) are checked by {!Classify}, not here. *)

type scalar_type = Tint | Treal | Tbool

type val_type =
  | Scalar of scalar_type
  | Array of scalar_type  (* 1-D array; 2-D values are streamed row-major *)

type binop =
  | Add | Sub | Mul | Div
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or
  | Min | Max

(** Elementary functions available as prefix intrinsics; all real-valued
    (the machine's function units provide them). *)
type math_fn = Sqrt | Abs | Exp | Ln | Sin | Cos

type unop = Neg | Not | Fn of math_fn

(** Array subscripts are restricted at parse time to the paper's rule (4):
    an index variable plus an integer-constant offset, or a constant.  The
    constant may be a [param] name; it is resolved during elaboration. *)
type index =
  | Ix_var of string * int  (* i + m : index variable plus constant offset *)
  | Ix_const of const_expr  (* constant subscript, e.g. X[0] *)

(** Compile-time integer expressions: literals, [param] names, and
    arithmetic.  Used for index-range bounds and constant subscripts. *)
and const_expr =
  | C_int of int
  | C_name of string
  | C_add of const_expr * const_expr
  | C_sub of const_expr * const_expr
  | C_mul of const_expr * const_expr

type expr =
  | Int_lit of int
  | Real_lit of float
  | Bool_lit of bool
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Select of string * index list  (* A[i+1], G[i, j-1] (row-major 2-D) *)
  | Let of def list * expr
  | If of expr * expr * expr

and def = { def_name : string; def_type : val_type option; def_rhs : expr }

type range = { rng_var : string; rng_lo : const_expr; rng_hi : const_expr }

type forall = {
  fa_ranges : range list;  (* one per dimension, outermost first *)
  fa_defs : def list;
  fa_body : expr;          (* the accumulation part *)
}

(** Body of a for-iter: a conditional tree whose leaves either re-enter the
    loop ([Iter_continue]) or terminate with a result value. *)
type iter_body =
  | Iter_let of def list * iter_body
  | Iter_if of expr * iter_body * iter_body
  | Iter_continue of (string * iter_update) list  (* iter x := e; ... *)
  | Iter_result of expr

and iter_update =
  | Upd_expr of expr                    (* i := i + 1 *)
  | Upd_append of string * index * expr (* T := T[i: P] *)

(** One loop-name initialization in the [for] header. *)
type loop_init =
  | Init_scalar of string * val_type option * expr
  | Init_array of string * val_type option * const_expr * expr
    (* T : array[real] := [r: E] *)

type foriter = { fi_inits : loop_init list; fi_body : iter_body }

type block_rhs = Forall of forall | Foriter of foriter

type block = { blk_name : string; blk_type : val_type; blk_rhs : block_rhs }

(** Declared program input: name, element type, and index range(s). *)
type input_decl = {
  in_name : string;
  in_type : val_type;
  in_ranges : (const_expr * const_expr) list;  (* empty for scalar inputs *)
}

type program = {
  prog_params : (string * const_expr) list;  (* param m = 8; ... *)
  prog_inputs : input_decl list;
  prog_blocks : block list;
}

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "=" | Ne -> "~="
  | And -> "&" | Or -> "|" | Min -> "min" | Max -> "max"

let math_fn_name = function
  | Sqrt -> "sqrt" | Abs -> "abs" | Exp -> "exp"
  | Ln -> "ln" | Sin -> "sin" | Cos -> "cos"

let unop_name = function Neg -> "-" | Not -> "~" | Fn f -> math_fn_name f

let scalar_type_name = function
  | Tint -> "integer"
  | Treal -> "real"
  | Tbool -> "boolean"

let type_name = function
  | Scalar st -> scalar_type_name st
  | Array st -> "array[" ^ scalar_type_name st ^ "]"

(** Whether a binop is arithmetic (result type = operand type). *)
let is_arith = function
  | Add | Sub | Mul | Div | Min | Max -> true
  | Lt | Le | Gt | Ge | Eq | Ne | And | Or -> false

(** Whether a binop is a comparison (boolean result over numbers). *)
let is_compare = function
  | Lt | Le | Gt | Ge | Eq | Ne -> true
  | Add | Sub | Mul | Div | Min | Max | And | Or -> false

let is_logic = function
  | And | Or -> true
  | Add | Sub | Mul | Div | Min | Max | Lt | Le | Gt | Ge | Eq | Ne -> false
