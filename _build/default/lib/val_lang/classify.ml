open Ast

exception Not_in_class of string

let reject fmt = Printf.ksprintf (fun s -> raise (Not_in_class s)) fmt

type array_shape = { sh_elt : scalar_type; sh_ranges : (int * int) list }

type prim_forall = {
  pf_name : string;
  pf_elt : scalar_type;
  pf_ranges : (string * int * int) list;
  pf_defs : def list;
  pf_body : expr;
}

type prim_foriter = {
  pi_name : string;
  pi_elt : scalar_type;
  pi_counter : string;
  pi_first : int;
  pi_last : int;
  pi_acc : string;
  pi_init_index : int;
  pi_init : expr;
  pi_elem : expr;
}

type pipe_block = Pb_forall of prim_forall | Pb_foriter of prim_foriter

type pipe_program = {
  pp_params : (string * int) list;
  pp_scalar_inputs : (string * scalar_type) list;
  pp_array_inputs : (string * array_shape) list;
  pp_blocks : pipe_block list;
}

let block_name = function
  | Pb_forall pf -> pf.pf_name
  | Pb_foriter pi -> pi.pi_name

let block_shape = function
  | Pb_forall pf ->
    {
      sh_elt = pf.pf_elt;
      sh_ranges = List.map (fun (_, lo, hi) -> (lo, hi)) pf.pf_ranges;
    }
  | Pb_foriter pi ->
    { sh_elt = pi.pi_elt; sh_ranges = [ (pi.pi_init_index, pi.pi_last) ] }

(* ------------------------------------------------------------------ *)
(* Primitive expressions (Definition, Section 5)                        *)
(* ------------------------------------------------------------------ *)

let check_primitive_expr ~index_vars ~scalars ~arrays
    ?(select_ok = fun _ _ -> ()) expr =
  let rec go scalars expr =
    match expr with
    | Int_lit _ | Real_lit _ | Bool_lit _ -> () (* rule 1 *)
    | Var name ->
      (* rule 2: scalar identifier (index variables are scalars too) *)
      if List.mem name scalars || List.mem name index_vars then ()
      else if List.mem name arrays then
        reject "array %s used without a subscript in a primitive expression"
          name
      else reject "unbound identifier %s in a primitive expression" name
    | Binop (_, a, b) ->
      (* rule 3 *)
      go scalars a;
      go scalars b
    | Unop (_, a) -> go scalars a
    | Select (name, indices) ->
      (* rule 4: A[i+m] with i an index variable, m constant *)
      if not (List.mem name arrays) then
        reject "selection from %s, which is not an array in scope" name;
      let offsets =
        List.map
          (function
            | Ix_var (v, off) ->
              if not (List.mem v index_vars) then
                reject "subscript of %s uses %s, not an index variable" name v;
              off
            | Ix_const _ ->
              reject
                "constant subscript on %s: primitive expressions only allow \
                 A[i+m]"
                name)
          indices
      in
      if List.length indices <> 1 && List.length indices <> 2 then
        reject "array %s selected with %d subscripts" name
          (List.length indices);
      (* Multi-dimensional selections must use the index variables in
         declaration order, one per dimension, for row-major streaming. *)
      (match indices with
      | [ Ix_var (v1, _); Ix_var (v2, _) ] ->
        let pos v =
          let rec find k = function
            | [] -> -1
            | x :: _ when x = v -> k
            | _ :: tl -> find (k + 1) tl
          in
          find 0 index_vars
        in
        if pos v1 >= pos v2 then
          reject
            "2-D selection on %s must use distinct index variables in \
             declaration order"
            name
      | _ -> ());
      select_ok name offsets
    | Let (defs, body) ->
      (* rule 5 *)
      let scalars =
        List.fold_left
          (fun scalars { def_name; def_rhs; _ } ->
            go scalars def_rhs;
            def_name :: scalars)
          scalars defs
      in
      go scalars body
    | If (c, t, e) ->
      (* rule 6 *)
      go scalars c;
      go scalars t;
      go scalars e
  in
  go scalars expr

let is_primitive_expr ~index_vars ~scalars ~arrays expr =
  match check_primitive_expr ~index_vars ~scalars ~arrays expr with
  | () -> true
  | exception Not_in_class _ -> false

let array_references expr =
  let refs = ref [] in
  let rec go = function
    | Int_lit _ | Real_lit _ | Bool_lit _ | Var _ -> ()
    | Binop (_, a, b) ->
      go a;
      go b
    | Unop (_, a) -> go a
    | Select (name, indices) ->
      let offsets =
        List.filter_map
          (function Ix_var (_, off) -> Some off | Ix_const _ -> None)
          indices
      in
      refs := (name, offsets) :: !refs
    | Let (defs, body) ->
      List.iter (fun d -> go d.def_rhs) defs;
      go body
    | If (c, t, e) ->
      go c;
      go t;
      go e
  in
  go expr;
  List.rev !refs

(* ------------------------------------------------------------------ *)
(* Constant folding of scalar expressions over params                   *)
(* ------------------------------------------------------------------ *)

let rec const_int_of_expr params expr =
  match expr with
  | Int_lit i -> Some i
  | Var n -> List.assoc_opt n params
  | Binop (Add, a, b) -> combine params ( + ) a b
  | Binop (Sub, a, b) -> combine params ( - ) a b
  | Binop (Mul, a, b) -> combine params ( * ) a b
  | Unop (Neg, a) ->
    Option.map (fun v -> -v) (const_int_of_expr params a)
  | _ -> None

and combine params op a b =
  match (const_int_of_expr params a, const_int_of_expr params b) with
  | Some x, Some y -> Some (op x y)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* forall blocks                                                        *)
(* ------------------------------------------------------------------ *)

let classify_forall ~params ~scalars ~arrays ~name ~elt fa =
  let const ce = Typecheck.eval_const params ce in
  let pf_ranges =
    List.map
      (fun { rng_var; rng_lo; rng_hi } ->
        let lo = const rng_lo and hi = const rng_hi in
        if hi < lo then
          reject "forall %s has empty index range [%d, %d]" name lo hi;
        (rng_var, lo, hi))
      fa.fa_ranges
  in
  (match pf_ranges with
  | [ _ ] | [ _; _ ] -> ()
  | _ -> reject "forall %s must have one or two index ranges" name);
  let index_vars = List.map (fun (v, _, _) -> v) pf_ranges in
  let scalars =
    List.fold_left
      (fun scalars d ->
        check_primitive_expr ~index_vars ~scalars ~arrays d.def_rhs;
        d.def_name :: scalars)
      scalars fa.fa_defs
  in
  check_primitive_expr ~index_vars ~scalars ~arrays fa.fa_body;
  { pf_name = name; pf_elt = elt; pf_ranges; pf_defs = fa.fa_defs;
    pf_body = fa.fa_body }

(* ------------------------------------------------------------------ *)
(* for-iter blocks                                                      *)
(* ------------------------------------------------------------------ *)

(* Decompose the loop condition into "continue while counter <= q".
   [polarity] is true when the continue arm is the then-arm. *)
let loop_bound ~params ~counter ~polarity cond =
  let const e =
    match const_int_of_expr params e with
    | Some v -> v
    | None -> reject "loop bound %s is not a compile-time constant"
                (match e with Var n -> n | _ -> "<expr>")
  in
  let is_counter = function Var v -> v = counter | _ -> false in
  match cond with
  | Binop (op, l, r) when is_counter l ->
    let k = const r in
    (match (op, polarity) with
    | Lt, true -> k - 1   (* while i <  k *)
    | Le, true -> k       (* while i <= k *)
    | Ge, false -> k - 1  (* until i >= k *)
    | Gt, false -> k      (* until i >  k *)
    | Eq, false -> k - 1  (* until i =  k *)
    | Ne, true -> k - 1   (* while i ~= k *)
    | _ ->
      reject "unsupported loop condition form on counter %s" counter)
  | Binop (op, l, r) when is_counter r ->
    let k = const l in
    (match (op, polarity) with
    | Gt, true -> k - 1   (* while k >  i *)
    | Ge, true -> k       (* while k >= i *)
    | Le, false -> k - 1  (* until k <= i *)
    | Lt, false -> k      (* until k <  i *)
    | Eq, false -> k - 1  (* until k =  i *)
    | Ne, true -> k - 1   (* while k ~= i *)
    | _ ->
      reject "unsupported loop condition form on counter %s" counter)
  | _ -> reject "loop condition must compare the counter %s to a constant"
           counter

let classify_foriter ~params ~scalars ~arrays ~name ~elt fi =
  let const ce = Typecheck.eval_const params ce in
  (* Loop names: exactly one integer counter and one accumulating array. *)
  let counter, first, acc, init_index, init_expr =
    match fi.fi_inits with
    | [ Init_scalar (c, _, c0); Init_array (a, _, r, e) ]
    | [ Init_array (a, _, r, e); Init_scalar (c, _, c0) ] ->
      let p =
        match const_int_of_expr params c0 with
        | Some p -> p
        | None -> reject "counter %s must start at a constant" c
      in
      (c, p, a, const r, e)
    | _ ->
      reject
        "for-iter %s must have exactly one scalar counter and one array \
         loop name"
        name
  in
  if init_index <> first - 1 then
    reject
      "for-iter %s: initial element index %d must be counter start - 1 (%d)"
      name init_index (first - 1);
  (* The initial element must be primitive with no index variable. *)
  check_primitive_expr ~index_vars:[] ~scalars ~arrays init_expr;
  (* Peel the definition part. *)
  let rec peel defs body =
    match body with
    | Iter_let (ds, rest) -> peel (defs @ ds) rest
    | _ -> (defs, body)
  in
  let defs, core = peel [] fi.fi_body in
  let cond, continue_updates, result_expr, polarity =
    match core with
    | Iter_if (c, Iter_continue us, Iter_result r) -> (c, us, r, true)
    | Iter_if (c, Iter_result r, Iter_continue us) -> (c, us, r, false)
    | _ ->
      reject
        "for-iter %s body must be a conditional with one iter arm and one \
         result arm"
        name
  in
  (match result_expr with
  | Var v when v = acc -> ()
  | _ -> reject "for-iter %s must terminate with the accumulated array" name);
  let last = loop_bound ~params ~counter ~polarity cond in
  if last < first then
    reject "for-iter %s performs no iterations (%d..%d)" name first last;
  (* Updates: counter := counter + 1 and acc := acc[counter: P]. *)
  let elem = ref None in
  List.iter
    (fun (lhs, upd) ->
      match upd with
      | Upd_expr rhs ->
        if lhs <> counter then
          reject "for-iter %s updates unexpected scalar %s" name lhs;
        (match rhs with
        | Binop (Add, Var v, Int_lit 1) when v = counter -> ()
        | Binop (Add, Int_lit 1, Var v) when v = counter -> ()
        | _ ->
          reject "for-iter %s: counter must advance by exactly 1" name)
      | Upd_append (arr, ix, e) ->
        if lhs <> acc || arr <> acc then
          reject "for-iter %s: append must target the array loop name %s"
            name acc;
        (match ix with
        | Ix_var (v, 0) when v = counter -> ()
        | _ ->
          reject "for-iter %s: append index must be the counter %s" name
            counter);
        if !elem <> None then
          reject "for-iter %s appends more than once per cycle" name;
        elem := Some e)
    continue_updates;
  let elem =
    match !elem with
    | Some e -> e
    | None -> reject "for-iter %s never appends to %s" name acc
  in
  if List.length continue_updates <> 2 then
    reject "for-iter %s must update exactly the counter and the array" name;
  (* The appended element: primitive on the counter; may reference the
     accumulator only as acc[i-1] (first-order recurrence). *)
  let select_ok arr offsets =
    if arr = acc then
      match offsets with
      | [ -1 ] -> ()
      | _ ->
        reject
          "for-iter %s may reference %s only as %s[%s-1] (first-order \
           recurrence)"
          name acc acc counter
  in
  let elem_with_defs = if defs = [] then elem else Let (defs, elem) in
  check_primitive_expr ~index_vars:[ counter ] ~scalars ~arrays:(acc :: arrays)
    ~select_ok elem_with_defs;
  {
    pi_name = name;
    pi_elt = elt;
    pi_counter = counter;
    pi_first = first;
    pi_last = last;
    pi_acc = acc;
    pi_init_index = init_index;
    pi_init = init_expr;
    pi_elem = elem_with_defs;
  }

(* ------------------------------------------------------------------ *)
(* Whole programs                                                       *)
(* ------------------------------------------------------------------ *)

(* Check that every selection window fits inside the producer's range:
   A[i+m] for i in [lo, hi] requires A's range to cover [lo+m, hi+m].
   This whole-range check is deliberately NOT applied during
   classification: selections inside conditional arms only access the
   index points their arm executes for (Example 1 reads C[i-1] only in the
   interior), and the compiler performs the precise per-arm masked check.
   The function remains available for diagnostics on unconditional code. *)
let check_windows ~shapes ~index_ranges expr ~where =
  let rec go = function
    | Int_lit _ | Real_lit _ | Bool_lit _ | Var _ -> ()
    | Binop (_, a, b) ->
      go a;
      go b
    | Unop (_, a) -> go a
    | Select (name, indices) ->
      (match List.assoc_opt name shapes with
      | None -> () (* accumulator references are checked elsewhere *)
      | Some shape ->
        if List.length indices <> List.length shape.sh_ranges then
          reject "%s: %s selected with %d subscripts but has %d dimension(s)"
            where name (List.length indices)
            (List.length shape.sh_ranges);
        List.iter2
          (fun ix (alo, ahi) ->
            match ix with
            | Ix_var (v, off) -> (
              match List.assoc_opt v index_ranges with
              | None -> ()
              | Some (lo, hi) ->
                if lo + off < alo || hi + off > ahi then
                  reject
                    "%s: window %s[%s%+d] spans [%d, %d] but %s has range \
                     [%d, %d]"
                    where name v off (lo + off) (hi + off) name alo ahi)
            | Ix_const _ -> ())
          indices shape.sh_ranges)
    | Let (defs, body) ->
      List.iter (fun d -> go d.def_rhs) defs;
      go body
    | If (c, t, e) ->
      go c;
      go t;
      go e
  in
  go expr

let classify_program_checked prog =
  let pp_params =
    List.fold_left
      (fun acc (name, ce) -> (name, Typecheck.eval_const acc ce) :: acc)
      [] prog.prog_params
  in
  let pp_scalar_inputs =
    List.filter_map
      (fun inp ->
        match inp.in_type with
        | Scalar t -> Some (inp.in_name, t)
        | Array _ -> None)
      prog.prog_inputs
  in
  let const ce = Typecheck.eval_const pp_params ce in
  let pp_array_inputs =
    List.filter_map
      (fun inp ->
        match inp.in_type with
        | Array t ->
          Some
            ( inp.in_name,
              {
                sh_elt = t;
                sh_ranges =
                  List.map (fun (lo, hi) -> (const lo, const hi)) inp.in_ranges;
              } )
        | Scalar _ -> None)
      prog.prog_inputs
  in
  let scalars0 =
    List.map fst pp_params @ List.map fst pp_scalar_inputs
  in
  let blocks_rev, _shapes =
    List.fold_left
      (fun (blocks, shapes) blk ->
        let elt =
          match blk.blk_type with
          | Array t -> t
          | Scalar _ -> reject "block %s must define an array" blk.blk_name
        in
        let arrays = List.map fst shapes in
        let pb =
          match blk.blk_rhs with
          | Forall fa ->
            let pf =
              classify_forall ~params:pp_params ~scalars:scalars0 ~arrays
                ~name:blk.blk_name ~elt fa
            in
            Pb_forall pf
          | Foriter fi ->
            let pi =
              classify_foriter ~params:pp_params ~scalars:scalars0 ~arrays
                ~name:blk.blk_name ~elt fi
            in
            Pb_foriter pi
        in
        (pb :: blocks, (block_name pb, block_shape pb) :: shapes))
      ([], pp_array_inputs) prog.prog_blocks
  in
  {
    pp_params;
    pp_scalar_inputs;
    pp_array_inputs;
    pp_blocks = List.rev blocks_rev;
  }

let classify_program prog =
  try
    Typecheck.check_program prog;
    classify_program_checked prog
  with Typecheck.Error msg -> reject "type error: %s" msg
