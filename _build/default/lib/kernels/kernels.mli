open Dfg

(** A suite of classic scientific kernels (Livermore-loop style) expressed
    in the paper's pipe-structured Val class.

    The paper motivates its compilation scheme with "the main loops of
    several benchmark programs we have studied" but lists none; this suite
    is the substitution documented in DESIGN.md: the standard
    computational-physics fragments that fall squarely inside the
    primitive-forall / simple-for-iter class.

    Each kernel carries an independent OCaml reference implementation, so
    correctness is checked two ways: against the Val interpreter (shared
    oracle) and against hand-written OCaml (guards against a common-mode
    bug in frontend semantics). *)

type kernel = {
  name : string;
  description : string;
  blocks : int;                 (* pipe-structured blocks *)
  source : int -> string;       (* Val source for a size parameter *)
  scalar_inputs : (string * Value.t) list;
  inputs : int -> Random.State.t -> (string * Value.t list) list;
  reference : int -> (string * Value.t list) list -> float list;
      (* expected value of [output] given the same inputs *)
  output : string;              (* the kernel's final output stream *)
  predicted_interval : int -> float;
      (* steady-state initiation interval the theory predicts *)
}

val all : kernel list

val find : string -> kernel
(** @raise Not_found *)

val floats : (string * Value.t list) list -> string -> float list
(** Extract an input wave as floats. *)
