open Dfg

type kernel = {
  name : string;
  description : string;
  blocks : int;
  source : int -> string;
  scalar_inputs : (string * Value.t) list;
  inputs : int -> Random.State.t -> (string * Value.t list) list;
  reference : int -> (string * Value.t list) list -> float list;
  output : string;
  predicted_interval : int -> float;
}

let floats inputs name =
  List.map Value.to_real (List.assoc name inputs)

let wave st n = List.init n (fun _ -> Random.State.float st 2.0 -. 1.0)

let tame st n = List.init n (fun _ -> Random.State.float st 0.8)

let reals xs = List.map (fun f -> Value.Real f) xs

let ratio a b = 2.0 *. float_of_int a /. float_of_int b

(* ------------------------------------------------------------------ *)

let hydro =
  {
    name = "hydro";
    description =
      "LFK1 hydrodynamics fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])";
    blocks = 1;
    source =
      (fun n ->
        Printf.sprintf
          {|
param n = %d;
input q : real;
input r : real;
input t : real;
input Y : array[real] [0, n-1];
input Z : array[real] [0, n+10];
X : array[real] :=
  forall k in [0, n-1]
  construct
    q + Y[k] * (r * Z[k+10] + t * Z[k+11])
  endall;
|}
          n);
    scalar_inputs =
      [ ("q", Value.Real 0.5); ("r", Value.Real 0.3); ("t", Value.Real 0.1) ];
    inputs =
      (fun n st -> [ ("Y", reals (wave st n)); ("Z", reals (wave st (n + 11))) ]);
    reference =
      (fun n inputs ->
        let y = Array.of_list (floats inputs "Y") in
        let z = Array.of_list (floats inputs "Z") in
        List.init n (fun k ->
            0.5 +. (y.(k) *. ((0.3 *. z.(k + 10)) +. (0.1 *. z.(k + 11))))));
    output = "X";
    predicted_interval = (fun n -> ratio (n + 11) n);
  }

let first_difference =
  {
    name = "first_difference";
    description = "LFK12 first difference: d[i] = y[i+1] - y[i]";
    blocks = 1;
    source =
      (fun n ->
        Printf.sprintf
          {|
param n = %d;
input Y : array[real] [0, n];
D : array[real] :=
  forall i in [0, n-1]
  construct
    Y[i+1] - Y[i]
  endall;
|}
          n);
    scalar_inputs = [];
    inputs = (fun n st -> [ ("Y", reals (wave st (n + 1))) ]);
    reference =
      (fun n inputs ->
        let y = Array.of_list (floats inputs "Y") in
        List.init n (fun i -> y.(i + 1) -. y.(i)));
    output = "D";
    predicted_interval = (fun n -> ratio (n + 1) n);
  }

let state_eos =
  {
    name = "state_eos";
    description =
      "LFK7 equation-of-state fragment (forall with multi-offset windows)";
    blocks = 1;
    source =
      (fun n ->
        Printf.sprintf
          {|
param n = %d;
input r : real;
input t : real;
input U : array[real] [0, n+2];
input Y : array[real] [0, n-1];
input Z : array[real] [0, n-1];
X : array[real] :=
  forall k in [0, n-1]
  construct
    U[k] + r * (Z[k] + r * Y[k])
         + t * (U[k+3] + r * (U[k+2] + r * U[k+1]))
  endall;
|}
          n);
    scalar_inputs = [ ("r", Value.Real 0.25); ("t", Value.Real 0.4) ];
    inputs =
      (fun n st ->
        [ ("U", reals (wave st (n + 3))); ("Y", reals (wave st n));
          ("Z", reals (wave st n)) ]);
    reference =
      (fun n inputs ->
        let u = Array.of_list (floats inputs "U") in
        let y = Array.of_list (floats inputs "Y") in
        let z = Array.of_list (floats inputs "Z") in
        let r = 0.25 and t = 0.4 in
        List.init n (fun k ->
            u.(k)
            +. (r *. (z.(k) +. (r *. y.(k))))
            +. (t *. (u.(k + 3) +. (r *. (u.(k + 2) +. (r *. u.(k + 1))))))));
    output = "X";
    predicted_interval = (fun n -> ratio (n + 3) n);
  }

let tridiag =
  {
    name = "tridiag";
    description =
      "LFK5 tri-diagonal elimination: x[i] = z[i]*(y[i] - x[i-1]) — an \
       affine recurrence solved at the maximal rate by the companion scheme";
    blocks = 1;
    source =
      (fun n ->
        Printf.sprintf
          {|
param n = %d;
input Y : array[real] [0, n+1];
input Z : array[real] [0, n+1];
X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let e : real := Z[i] * (Y[i] - T[i-1])
    in
      if i < n+1 then iter T := T[i: e]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}
          n);
    scalar_inputs = [];
    inputs =
      (fun n st ->
        [ ("Y", reals (wave st (n + 2))); ("Z", reals (tame st (n + 2))) ]);
    reference =
      (fun n inputs ->
        let y = Array.of_list (floats inputs "Y") in
        let z = Array.of_list (floats inputs "Z") in
        let x = Array.make (n + 1) 0. in
        for i = 1 to n do
          x.(i) <- z.(i) *. (y.(i) -. x.(i - 1))
        done;
        Array.to_list x);
    output = "X";
    predicted_interval = (fun n -> ratio (n + 2) (n + 1));
  }

let prefix_sum =
  {
    name = "prefix_sum";
    description = "LFK11 first sum: x[i] = x[i-1] + y[i]";
    blocks = 1;
    source =
      (fun n ->
        Printf.sprintf
          {|
param n = %d;
input Y : array[real] [1, n+1];
S : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0]
  do
    let s : real := T[i-1] + Y[i]
    in
      if i <= n then iter T := T[i: s]; i := i + 1 enditer else T endif
    endlet
  endfor;
|}
          n);
    scalar_inputs = [];
    inputs = (fun n st -> [ ("Y", reals (wave st (n + 1))) ]);
    reference =
      (fun n inputs ->
        let y = Array.of_list (floats inputs "Y") in
        let x = Array.make (n + 1) 0. in
        for i = 1 to n do
          x.(i) <- x.(i - 1) +. y.(i - 1)
        done;
        Array.to_list x);
    output = "S";
    predicted_interval = (fun n -> ratio (n + 1) (n + 1));
  }

let smooth_chain =
  {
    name = "smooth_chain";
    description =
      "three-block pipe: two cascaded smoothing passes and a pointwise \
       combine (Theorem 4 on a deeper flow dependency graph)";
    blocks = 3;
    source =
      (fun m ->
        Printf.sprintf
          {|
param m = %d;
input C : array[real] [0, m+1];

S1 : array[real] :=
  forall i in [1, m]
  construct 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endall;

S2 : array[real] :=
  forall i in [2, m-1]
  construct 0.25 * (S1[i-1] + 2.*S1[i] + S1[i+1]) endall;

W : array[real] :=
  forall i in [2, m-1]
  construct S2[i] - C[i] endall;
|}
          m);
    scalar_inputs = [];
    inputs = (fun m st -> [ ("C", reals (wave st (m + 2))) ]);
    reference =
      (fun m inputs ->
        let c = Array.of_list (floats inputs "C") in
        let smooth a lo hi =
          Array.init (hi - lo + 1) (fun k ->
              let i = lo + k in
              0.25 *. (a.(i - 1) +. (2. *. a.(i)) +. a.(i + 1)))
        in
        let s1full = Array.make (m + 2) 0. in
        Array.blit (smooth c 1 m) 0 s1full 1 (m);
        let s2 =
          Array.init (m - 2) (fun k ->
              let i = 2 + k in
              0.25
              *. (s1full.(i - 1) +. (2. *. s1full.(i)) +. s1full.(i + 1)))
        in
        List.init (m - 2) (fun k -> s2.(k) -. c.(2 + k)));
    output = "W";
    predicted_interval = (fun m -> ratio (m + 2) (m - 2));
  }

let planckian =
  {
    name = "planckian";
    description =
      "LFK22 Planckian distribution: w[k] = u[k] / (exp(v[k]) - 1), with \
       the argument clamped the way the original loop does";
    blocks = 1;
    source =
      (fun n ->
        Printf.sprintf
          {|
param n = %d;
input U : array[real] [0, n-1];
input V : array[real] [0, n-1];
W : array[real] :=
  forall k in [0, n-1]
    y : real := min(V[k], 20.);
  construct
    U[k] / (exp(y) - 1.)
  endall;
|}
          n);
    scalar_inputs = [];
    inputs =
      (fun n st ->
        [ ("U", reals (wave st n));
          ("V", reals (List.map (fun f -> 1.0 +. f) (tame st n))) ]);
    reference =
      (fun n inputs ->
        let u = Array.of_list (floats inputs "U") in
        let v = Array.of_list (floats inputs "V") in
        List.init n (fun k ->
            u.(k) /. (exp (Float.min v.(k) 20.) -. 1.)));
    output = "W";
    predicted_interval = (fun _ -> 2.0);
  }

let integrate_predictors =
  (* a 10-term weighted sum: a very wide, deep expression tree whose full
     pipelining rests entirely on the balancer *)
  {
    name = "integrate_predictors";
    description =
      "LFK9 integrate predictors: px[i] = sum of 10 weighted history terms";
    blocks = 1;
    source =
      (fun n ->
        Printf.sprintf
          {|
param n = %d;
input P0 : array[real] [0, n+9];
X : array[real] :=
  forall i in [0, n-1]
  construct
    1.90 * P0[i] + 0.50 * P0[i+1] + 0.25 * P0[i+2] + 0.125 * P0[i+3]
      + 0.0625 * P0[i+4] + 0.03125 * P0[i+5] + 0.015 * P0[i+6]
      + 0.007 * P0[i+7] + 0.003 * P0[i+8] + 0.001 * P0[i+9]
  endall;
|}
          n);
    scalar_inputs = [];
    inputs = (fun n st -> [ ("P0", reals (wave st (n + 10))) ]);
    reference =
      (fun n inputs ->
        let p = Array.of_list (floats inputs "P0") in
        let w =
          [| 1.90; 0.50; 0.25; 0.125; 0.0625; 0.03125; 0.015; 0.007; 0.003;
             0.001 |]
        in
        List.init n (fun i ->
            let acc = ref 0.0 in
            for k = 0 to 9 do
              acc := !acc +. (w.(k) *. p.(i + k))
            done;
            !acc));
    output = "X";
    predicted_interval = (fun n -> ratio (n + 10) n);
  }

let all =
  [
    hydro; first_difference; state_eos; tridiag; prefix_sum; smooth_chain;
    planckian; integrate_predictors;
  ]

let find name = List.find (fun k -> k.name = name) all
