type binding = In_arc | In_arc_init of Value.t | In_const of Value.t

type endpoint = { ep_node : int; ep_port : int }

type node = {
  id : int;
  op : Opcode.t;
  label : string;
  inputs : binding array;
  mutable dests : endpoint list array;
}

type t = { mutable nodes : node array; mutable count : int }

let create () = { nodes = [||]; count = 0 }

let node_count g = g.count

let node g id =
  if id < 0 || id >= g.count then
    invalid_arg (Printf.sprintf "Graph.node: bad id %d" id)
  else g.nodes.(id)

let add g ?label op bindings =
  let arity = Opcode.arity op in
  if Array.length bindings <> arity then
    invalid_arg
      (Printf.sprintf "Graph.add: %s expects %d operands, got %d"
         (Opcode.name op) arity (Array.length bindings));
  let id = g.count in
  let label = match label with Some l -> l | None -> Opcode.name op in
  let n =
    {
      id;
      op;
      label;
      inputs = Array.copy bindings;
      dests = Array.make (Opcode.out_slots op) [];
    }
  in
  if Array.length g.nodes = g.count then begin
    let cap = max 16 (2 * Array.length g.nodes) in
    let nodes = Array.make cap n in
    Array.blit g.nodes 0 nodes 0 g.count;
    g.nodes <- nodes
  end;
  g.nodes.(g.count) <- n;
  g.count <- g.count + 1;
  id

let connect_slot g ~src ~slot ~dst ~port =
  let s = node g src and d = node g dst in
  if slot < 0 || slot >= Array.length s.dests then
    invalid_arg
      (Printf.sprintf "Graph.connect: %s#%d has no output slot %d" s.label
         src slot);
  if port < 0 || port >= Array.length d.inputs then
    invalid_arg
      (Printf.sprintf "Graph.connect: %s#%d has no input port %d" d.label dst
         port);
  (match d.inputs.(port) with
  | In_const _ ->
    invalid_arg
      (Printf.sprintf
         "Graph.connect: port %d of %s#%d is a constant operand" port d.label
         dst)
  | In_arc | In_arc_init _ -> ());
  s.dests.(slot) <- { ep_node = dst; ep_port = port } :: s.dests.(slot)

let connect g ~src ~dst ~port = connect_slot g ~src ~slot:0 ~dst ~port

let iter_nodes g f =
  for i = 0 to g.count - 1 do
    f g.nodes.(i)
  done

let fold_nodes g ~init ~f =
  let acc = ref init in
  iter_nodes g (fun n -> acc := f !acc n);
  !acc

let producers g =
  let prods =
    Array.init g.count (fun i ->
        Array.make (Array.length g.nodes.(i).inputs) [])
  in
  iter_nodes g (fun n ->
      Array.iteri
        (fun slot dests ->
          List.iter
            (fun { ep_node; ep_port } ->
              prods.(ep_node).(ep_port) <-
                (n.id, slot) :: prods.(ep_node).(ep_port))
            dests)
        n.dests);
  Array.map (Array.map Array.of_list) prods

let inputs g =
  fold_nodes g ~init:[] ~f:(fun acc n ->
      match n.op with Opcode.Input name -> (name, n.id) :: acc | _ -> acc)
  |> List.rev

let outputs g =
  fold_nodes g ~init:[] ~f:(fun acc n ->
      match n.op with Opcode.Output name -> (name, n.id) :: acc | _ -> acc)
  |> List.rev

let find_input g name = List.assoc name (inputs g)

let find_output g name = List.assoc name (outputs g)

let validate g =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let prods = producers g in
  iter_nodes g (fun n ->
      let arc_ports = ref 0 in
      Array.iteri
        (fun port binding ->
          match binding with
          | In_const _ -> ()
          | In_arc | In_arc_init _ -> (
            incr arc_ports;
            match Array.length prods.(n.id).(port) with
            | 1 -> ()
            | 0 ->
              err "%s#%d: arc port %d has no producer" n.label n.id port
            | k ->
              err "%s#%d: arc port %d has %d producers" n.label n.id port k))
        n.inputs;
      if Array.length n.inputs > 0 && !arc_ports = 0 then
        err "%s#%d: all operands are constants (cell would fire unboundedly)"
          n.label n.id;
      Array.iteri
        (fun slot dests ->
          if dests = [] then
            err "%s#%d: output slot %d has no destination" n.label n.id slot)
        n.dests);
  let dup what names =
    let sorted = List.sort compare names in
    let rec dups = function
      | a :: (b :: _ as rest) ->
        if a = b then err "duplicate %s stream %s" what a;
        dups rest
      | _ -> ()
    in
    dups sorted
  in
  dup "input" (List.map fst (inputs g));
  dup "output" (List.map fst (outputs g));
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let validate_exn g =
  match validate g with
  | Ok () -> ()
  | Error es -> invalid_arg ("invalid dataflow graph:\n" ^ String.concat "\n" es)

let opcode_census g =
  let tbl = Hashtbl.create 16 in
  iter_nodes g (fun n ->
      let key =
        match n.op with
        | Opcode.Fifo _ -> "FIFO"
        | Opcode.Bool_source _ -> "CTL"
        | Opcode.Iota _ -> "IOTA"
        | Opcode.Input _ -> "IN"
        | Opcode.Output _ -> "OUT"
        | op -> Opcode.name op
      in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare

let arc_count g =
  fold_nodes g ~init:0 ~f:(fun acc n ->
      acc + Array.fold_left (fun a dests -> a + List.length dests) 0 n.dests)
