type segment = { value : bool; count : int }

type t = { segments : segment list; cyclic : bool }

let make ~cyclic runs =
  List.iter
    (fun (_, count) ->
      if count < 0 then invalid_arg "Ctlseq.make: negative run length")
    runs;
  let segments =
    List.fold_left
      (fun acc (value, count) ->
        if count = 0 then acc
        else
          match acc with
          | { value = v; count = c } :: rest when v = value ->
            { value; count = c + count } :: rest
          | _ -> { value; count } :: acc)
      [] runs
    |> List.rev
  in
  if segments = [] then invalid_arg "Ctlseq.make: empty sequence";
  { segments; cyclic }

let period t =
  List.fold_left (fun acc seg -> acc + seg.count) 0 t.segments

let nth t k =
  if k < 0 then invalid_arg "Ctlseq.nth: negative position";
  let p = period t in
  let k = if t.cyclic then k mod p else k in
  if k >= p then None
  else
    let rec find k = function
      | [] -> assert false
      | seg :: rest -> if k < seg.count then Some seg.value else find (k - seg.count) rest
    in
    find k t.segments

let to_list t ~periods =
  let reps = if t.cyclic then periods else 1 in
  List.concat_map
    (fun _ ->
      List.concat_map
        (fun seg -> List.init seg.count (fun _ -> seg.value))
        t.segments)
    (List.init reps Fun.id)

let selection_window ~lo ~hi ~sel_lo ~sel_hi =
  if sel_lo < lo || sel_hi > hi || sel_hi < sel_lo then
    invalid_arg
      (Printf.sprintf
         "Ctlseq.selection_window: [%d, %d] not inside stream [%d, %d]"
         sel_lo sel_hi lo hi);
  make ~cyclic:true
    [
      (false, sel_lo - lo); (true, sel_hi - sel_lo + 1); (false, hi - sel_hi);
    ]

let describe t =
  let seg_str { value; count } =
    let c = if value then "T" else "F" in
    if count = 1 then c else Printf.sprintf "%s^%d" c count
  in
  let body = String.concat " " (List.map seg_str t.segments) in
  Printf.sprintf "<%s>%s" body (if t.cyclic then "*" else "")

let equal a b = a.cyclic = b.cyclic && a.segments = b.segments
