let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_attrs (n : Graph.node) =
  let consts =
    Array.to_list n.Graph.inputs
    |> List.filter_map (function
         | Graph.In_const v -> Some (Value.to_string v)
         | Graph.In_arc_init v -> Some ("init " ^ Value.to_string v)
         | Graph.In_arc -> None)
  in
  let label =
    match consts with
    | [] -> n.Graph.label
    | cs -> Printf.sprintf "%s\\n[%s]" n.Graph.label (String.concat ", " cs)
  in
  let shape, color =
    match n.Graph.op with
    | Opcode.Input _ -> ("invhouse", "lightblue")
    | Opcode.Output _ -> ("house", "lightblue")
    | Opcode.Bool_source _ | Opcode.Iota _ -> ("cds", "khaki")
    | Opcode.Merge -> ("invtrapezium", "lightsalmon")
    | Opcode.Switch -> ("trapezium", "lightsalmon")
    | Opcode.Tgate | Opcode.Fgate -> ("diamond", "palegreen")
    | Opcode.Fifo _ -> ("box3d", "lightgrey")
    | Opcode.Sink -> ("point", "black")
    | _ -> ("box", "white")
  in
  Printf.sprintf "label=\"%s\", shape=%s, style=filled, fillcolor=%s"
    (escape label) shape color

let to_dot ?(name = "dataflow") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n";
  Graph.iter_nodes g (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [%s];\n" n.Graph.id (node_attrs n)));
  Graph.iter_nodes g (fun n ->
      Array.iteri
        (fun slot dests ->
          let extra =
            match (n.Graph.op, slot) with
            | Opcode.Switch, 0 -> " [label=\"T\"]"
            | Opcode.Switch, 1 -> " [label=\"F\"]"
            | _ -> ""
          in
          List.iter
            (fun { Graph.ep_node; ep_port } ->
              let port_note =
                match (Graph.node g ep_node).Graph.op with
                | Opcode.Merge ->
                  [ " [label=\"M\"]"; " [label=\"I1\"]"; " [label=\"I2\"]" ]
                  |> fun l -> List.nth l ep_port
                | Opcode.Tgate | Opcode.Fgate | Opcode.Switch ->
                  if ep_port = 0 then " [style=dashed]" else ""
                | _ -> ""
              in
              let attr = if extra <> "" then extra else port_note in
              Buffer.add_string buf
                (Printf.sprintf "  n%d -> n%d%s;\n" n.Graph.id ep_node attr))
            dests)
        n.Graph.dests);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot g))
