(** Macro expansions that lower abstract nodes to pure machine code.

    The compiler emits two convenience node kinds that a real static
    dataflow machine would not have: elastic [Fifo k] buffers and
    [Bool_source] control-sequence generators.  Both are implementable
    with ordinary instruction cells; these expansions perform that
    lowering so every result can be validated on a graph containing only
    primitive cells:

    - [Fifo k] becomes a chain of [k] identity cells, matching the
      paper's formulation where FIFOs are just buffering stages and
      "each path through the graph passes through exactly the same
      number of instruction cells";
    - [Bool_source s] (cyclic [s]) becomes an index generator — an
      ADD/ID feedback loop of even length 2 carrying one token, hence
      running at the maximal rate 1/2 — followed by MOD and a balanced
      comparison tree that tests membership of the position in the true
      runs of [s].  This realizes Todd's "straightforward arrangements
      of data flow instructions" cited in Section 6. *)

val expand_fifos : Graph.t -> Graph.t
(** Replace every [Fifo k] with a chain of [k] [Id] cells. *)

val expand_bool_sources : Graph.t -> Graph.t
(** Replace every cyclic [Bool_source] with an instruction subgraph.
    Finite sources are left in place (they occur only in tests). *)

val expand_iotas : Graph.t -> Graph.t
(** Replace every [Iota] index source with a counter / MOD / ADD
    subgraph. *)

val expand_all : Graph.t -> Graph.t
(** [expand_bool_sources], [expand_iotas], then [expand_fifos]. *)
