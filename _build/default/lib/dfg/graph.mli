(** Machine-level dataflow programs as instruction graphs.

    "A machine level data flow program, regarded as a collection of
    instruction cells, is essentially a directed graph, with nodes
    corresponding to instructions and an arc for each instruction
    destination field" (Section 2).  A single arc stands for both the
    forward result path and the reverse acknowledge path (Section 3).

    Nodes are identified by dense integer ids.  Each input port is either
    an arc endpoint (optionally preloaded with an initial token, which
    models operand values set at program-load time), or an immediate
    constant operand (a field of the instruction cell, always present and
    never acknowledged). *)

type binding =
  | In_arc                        (* receives packets over an arc *)
  | In_arc_init of Value.t        (* arc port preloaded at load time *)
  | In_const of Value.t           (* immediate constant operand *)

type endpoint = { ep_node : int; ep_port : int }

type node = private {
  id : int;
  op : Opcode.t;
  label : string;
  inputs : binding array;                 (* length [Opcode.arity op] *)
  mutable dests : endpoint list array;    (* length [Opcode.out_slots op] *)
}

type t

val create : unit -> t

val add : t -> ?label:string -> Opcode.t -> binding array -> int
(** Add an instruction cell; returns its id.
    @raise Invalid_argument if the binding count differs from the opcode
    arity, or if a zero-arity position is given [In_const]. *)

val connect : t -> src:int -> dst:int -> port:int -> unit
(** Add a destination [dst.port] to output slot 0 of [src].
    @raise Invalid_argument on bad ids, ports, or when the target port is
    an [In_const]. *)

val connect_slot : t -> src:int -> slot:int -> dst:int -> port:int -> unit
(** As {!connect} for a specific output slot (needed for [Switch]). *)

val node_count : t -> int

val node : t -> int -> node
(** @raise Invalid_argument on a bad id. *)

val iter_nodes : t -> (node -> unit) -> unit

val fold_nodes : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val producers : t -> (int * int) array array array
(** [producers g .(v).(port)] lists the [(src, slot)] pairs feeding each
    arc port (a validated graph has exactly one per arc port). *)

val inputs : t -> (string * int) list
(** Input stream names with their node ids, in insertion order. *)

val outputs : t -> (string * int) list

val find_input : t -> string -> int
(** @raise Not_found *)

val find_output : t -> string -> int
(** @raise Not_found *)

val validate : t -> (unit, string list) result
(** Structural checks: every arc port fed by exactly one producer; every
    output slot has at least one destination; no cell whose ports are all
    constants (it would fire unboundedly); distinct input/output stream
    names. *)

val validate_exn : t -> unit
(** @raise Invalid_argument listing all validation errors. *)

val opcode_census : t -> (string * int) list
(** Count of nodes per opcode name, sorted by name — the "machine program
    size" statistic used in benches. *)

val arc_count : t -> int
