(** Structural analyses over instruction graphs.

    Arc weights: a normal cell contributes delay 1 to every path through
    it; a [Fifo k] cell contributes [k] (it stands for a chain of [k]
    identity cells — see {!Macro.expand_fifos}). *)

val successors : Graph.t -> int -> int list
(** Distinct successor node ids over all output slots. *)

val predecessors : Graph.t -> int -> int list
(** Distinct producer node ids over all arc ports. *)

val topological_order : Graph.t -> int list option
(** All node ids in topological order, or [None] if the graph has a
    cycle. *)

val cycles : Graph.t -> int list list
(** Strongly connected components with more than one node, or single nodes
    with self arcs — the feedback loops of for-iter implementations.  Empty
    for acyclic graphs. *)

val node_delay : Graph.node -> int
(** 1 for ordinary cells, [k] for [Fifo k]. *)

val longest_path_from_sources : Graph.t -> int array option
(** For each node, the maximum total delay over paths from any source
    (node with no arc predecessors) to just {e before} the node; [None]
    for cyclic graphs. *)

val strict_balance_check : Graph.t -> (int array, string) result
(** The paper's full-pipelining structural condition for acyclic graphs:
    "each path through the graph passes through exactly the same number of
    instruction cells".  Checks that a depth assignment exists in which
    every arc [u -> v] satisfies [depth v = depth u + delay u], with all
    [Input] nodes at depth 0 ([Bool_source] nodes float).  Returns the
    depths, or a description of the first inconsistent arc. *)
