let successors g id =
  let n = Graph.node g id in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun dests ->
      List.iter
        (fun { Graph.ep_node; _ } -> Hashtbl.replace seen ep_node ())
        dests)
    n.Graph.dests;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

let predecessors_table g =
  let prods = Graph.producers g in
  Array.map
    (fun ports ->
      let seen = Hashtbl.create 4 in
      Array.iter
        (fun producers ->
          Array.iter (fun (src, _) -> Hashtbl.replace seen src ()) producers)
        ports;
      Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare)
    prods

let predecessors g id = (predecessors_table g).(id)

let topological_order g =
  let n = Graph.node_count g in
  let indeg = Array.make n 0 in
  let preds = predecessors_table g in
  Array.iteri (fun v ps -> indeg.(v) <- List.length ps) preds;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr emitted;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      (successors g v)
  done;
  if !emitted = n then Some (List.rev !order) else None

(* Tarjan's strongly connected components. *)
let cycles g =
  let n = Graph.node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let succs = Array.init n (successors g) in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      succs.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      let is_cycle =
        match comp with
        | [ w ] -> List.mem w succs.(w)
        | _ -> true
      in
      if is_cycle then sccs := comp :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  List.rev !sccs

let node_delay n =
  match n.Graph.op with Opcode.Fifo k -> k | _ -> 1

let longest_path_from_sources g =
  match topological_order g with
  | None -> None
  | Some order ->
    let n = Graph.node_count g in
    let dist = Array.make n 0 in
    List.iter
      (fun v ->
        let dv = dist.(v) + node_delay (Graph.node g v) in
        List.iter (fun s -> dist.(s) <- max dist.(s) dv) (successors g v))
      order;
    Some dist

let strict_balance_check g =
  let n = Graph.node_count g in
  let depth = Array.make n min_int in
  (* adjacency with weights, both directions *)
  let fwd = Array.make n [] and bwd = Array.make n [] in
  Graph.iter_nodes g (fun node ->
      let w = node_delay node in
      Array.iter
        (fun dests ->
          List.iter
            (fun { Graph.ep_node; _ } ->
              fwd.(node.Graph.id) <- (ep_node, w) :: fwd.(node.Graph.id);
              bwd.(ep_node) <- (node.Graph.id, w) :: bwd.(ep_node))
            dests)
        node.Graph.dests);
  let error = ref None in
  let queue = Queue.create () in
  let assign v d =
    if depth.(v) = min_int then begin
      depth.(v) <- d;
      Queue.add v queue
    end
    else if depth.(v) <> d && !error = None then
      error :=
        Some
          (Printf.sprintf
             "node %s#%d required at depths %d and %d: unbalanced paths"
             (Graph.node g v).Graph.label v depth.(v) d)
  in
  (* Pin all input streams at depth 0 so parallel input paths align. *)
  Graph.iter_nodes g (fun node ->
      match node.Graph.op with
      | Opcode.Input _ -> assign node.Graph.id 0
      | _ -> ());
  let drain () =
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter (fun (s, w) -> assign s (depth.(v) + w)) fwd.(v);
      List.iter (fun (p, w) -> assign p (depth.(v) - w)) bwd.(v)
    done
  in
  drain ();
  (* Components not reachable from inputs (e.g. graphs driven purely by
     Bool_source or constants) float: pin an arbitrary representative. *)
  for v = 0 to n - 1 do
    if depth.(v) = min_int then begin
      assign v 0;
      drain ()
    end
  done;
  match !error with
  | Some msg -> Error msg
  | None -> Ok depth
