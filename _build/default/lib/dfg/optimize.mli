(** Common-subexpression elimination on instruction graphs.

    Two cells compute the same stream when they have the same opcode, the
    same immediate operands, and the same producers on the same ports —
    deterministic dataflow makes the rewrite sound, and the acknowledge
    discipline handles the increased fan-out of the surviving cell.  The
    compiler memoizes windows and index sources per block; this pass
    additionally merges duplicates {e across} blocks (identical control
    generators, selection gates over the same producer, repeated
    arithmetic).

    Cells inside feedback loops (strongly connected components), [Input]
    and [Output] cells, and [Sink]s are never merged.  Run before
    balancing: merged cells keep path lengths intact, and the balancer
    then sizes buffers for the deduplicated graph. *)

val cse : Graph.t -> Graph.t * int array
(** Returns the rewritten graph and the old-id → new-id map. *)

val cse_stats : Graph.t -> int
(** Number of cells CSE would remove (for reporting). *)
