(** Textual serialization of instruction graphs (".dfg" format).

    A compiled machine program is a loadable artifact — the paper's
    machine-level programs are "loaded into specific memory locations in
    the machine before computation begins" — so the graphs can be written
    out and reloaded exactly.  One line per cell:

    {v
    cell 4 MULT label="cell4" in=[arc, const:real:2.5] -> [(7,0)]
    cell 9 CTL label="sel.C" seq=<F T^6 F>* -> [(3,0)]
    v}

    The format round-trips: [of_string (to_string g)] reconstructs a graph
    equal to [g] up to destination list order. *)

exception Parse_error of string

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Parse_error on malformed input *)

val write_file : string -> Graph.t -> unit

val read_file : string -> Graph.t
(** @raise Parse_error / [Sys_error] *)
