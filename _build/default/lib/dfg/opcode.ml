(** Instruction-cell operation codes of the simulated static dataflow
    machine (Dennis & Misunas architecture, as summarized in Section 2 of
    the paper).

    Port conventions:
    - gates ([Tgate]/[Fgate]) and [Switch]: port 0 = boolean control,
      port 1 = data;
    - [Merge]: port 0 = control M, port 1 = true input I1,
      port 2 = false input I2 (fires on M plus the selected input only,
      leaving the other operand untouched — Section 5);
    - [Switch] has two output slots: 0 = true destinations, 1 = false
      destinations (the paper's "destinations according to a tag");
    - everything else: data ports 0..arity-1, one output slot. *)

type arith = Add | Sub | Mul | Div | Min | Max | Mod

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type logic = And | Or

type math = Sqrt | Abs | Exp | Ln | Sin | Cos

type t =
  | Id                      (* identity: the paper's buffering/skew stage *)
  | Arith of arith
  | Compare of cmp
  | Logic of logic
  | Neg
  | Not
  | Math of math            (* elementary function (FU-provided) *)
  | Tgate                   (* forward data when control is true, else absorb *)
  | Fgate                   (* forward data when control is false, else absorb *)
  | Switch                  (* route data to the T or F destination set *)
  | Merge                   (* select one of two inputs under control *)
  | Merge_switch            (* merge whose result also goes to conditional
                               destinations: port 3 is a second control D;
                               slot 0 fires always, slot 1 only when D is
                               true (the paper's tagged destination fields,
                               Figure 7's output-plus-gated-feedback) *)
  | Fifo of int             (* elastic buffer of capacity k >= 1 *)
  | Bool_source of Ctlseq.t (* control-sequence generator (Todd) *)
  | Iota of { lo : int; hi : int; rep : int }
    (* index stream lo..hi cycling per wave; each value repeated [rep]
       times (rep = row width streams the outer index of a 2-D block) *)
  | Input of string         (* program input stream, fed by the simulator *)
  | Output of string        (* program output stream, collected *)
  | Sink                    (* consume and discard *)

let arity = function
  | Id | Neg | Not | Math _ | Fifo _ | Output _ | Sink -> 1
  | Arith _ | Compare _ | Logic _ | Tgate | Fgate | Switch -> 2
  | Merge -> 3
  | Merge_switch -> 4
  | Bool_source _ | Iota _ | Input _ -> 0

let out_slots = function
  | Switch | Merge_switch -> 2
  | Output _ | Sink -> 0
  | Id | Arith _ | Compare _ | Logic _ | Neg | Not | Math _ | Tgate | Fgate
  | Merge | Fifo _ | Bool_source _ | Iota _ | Input _ ->
    1

let arith_name = function
  | Add -> "ADD" | Sub -> "SUB" | Mul -> "MULT" | Div -> "DIV"
  | Min -> "MIN" | Max -> "MAX" | Mod -> "MOD"

let cmp_name = function
  | Lt -> "LT" | Le -> "LE" | Gt -> "GT" | Ge -> "GE" | Eq -> "EQ" | Ne -> "NE"

let logic_name = function And -> "AND" | Or -> "OR"

let math_name = function
  | Sqrt -> "SQRT" | Abs -> "ABS" | Exp -> "EXP"
  | Ln -> "LN" | Sin -> "SIN" | Cos -> "COS"

let name = function
  | Id -> "ID"
  | Arith a -> arith_name a
  | Compare c -> cmp_name c
  | Logic l -> logic_name l
  | Neg -> "NEG"
  | Not -> "NOT"
  | Math m -> math_name m
  | Tgate -> "TGATE"
  | Fgate -> "FGATE"
  | Switch -> "SWITCH"
  | Merge -> "MERG"
  | Merge_switch -> "MERGSW"
  | Fifo k -> Printf.sprintf "FIFO(%d)" k
  | Bool_source s -> Printf.sprintf "CTL%s" (Ctlseq.describe s)
  | Iota { lo; hi; rep } ->
    if rep = 1 then Printf.sprintf "IOTA[%d,%d]" lo hi
    else Printf.sprintf "IOTA[%d,%d]x%d" lo hi rep
  | Input n -> Printf.sprintf "IN(%s)" n
  | Output n -> Printf.sprintf "OUT(%s)" n
  | Sink -> "SINK"

(** Apply a two-operand arithmetic operation with integer→real promotion
    (the machine's function units). *)
let apply_arith op a b =
  match (op, a, b) with
  | Add, Value.Int x, Value.Int y -> Value.Int (x + y)
  | Sub, Value.Int x, Value.Int y -> Value.Int (x - y)
  | Mul, Value.Int x, Value.Int y -> Value.Int (x * y)
  | Div, Value.Int x, Value.Int y ->
    if y = 0 then Value.clash "integer division by zero"
    else Value.Int (x / y)
  | Mod, Value.Int x, Value.Int y ->
    if y = 0 then Value.clash "integer modulo by zero"
    else Value.Int (((x mod y) + y) mod y)
  | Min, Value.Int x, Value.Int y -> Value.Int (min x y)
  | Max, Value.Int x, Value.Int y -> Value.Int (max x y)
  | Mod, _, _ -> Value.clash "MOD requires integer operands"
  | _ ->
    let x = Value.to_real a and y = Value.to_real b in
    Value.Real
      (match op with
      | Add -> x +. y
      | Sub -> x -. y
      | Mul -> x *. y
      | Div -> x /. y
      | Min -> Float.min x y
      | Max -> Float.max x y
      | Mod -> assert false)

let apply_cmp op a b =
  let c =
    match (a, b) with
    | Value.Int x, Value.Int y -> compare x y
    | Value.Bool x, Value.Bool y -> compare x y
    | _ -> compare (Value.to_real a) (Value.to_real b)
  in
  Value.Bool
    (match op with
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0
    | Eq -> c = 0
    | Ne -> c <> 0)

(** Apply an elementary function ([Abs] stays integral on integers). *)
let apply_math m v =
  match (m, v) with
  | Abs, Value.Int i -> Value.Int (abs i)
  | _ ->
    let x = Value.to_real v in
    Value.Real
      (match m with
      | Sqrt -> sqrt x
      | Abs -> Float.abs x
      | Exp -> exp x
      | Ln -> log x
      | Sin -> sin x
      | Cos -> cos x)

let apply_logic op a b =
  let x = Value.to_bool a and y = Value.to_bool b in
  Value.Bool (match op with And -> x && y | Or -> x || y)
