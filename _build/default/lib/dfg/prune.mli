(** Dead-code elimination on instruction graphs.

    Cells with no path to any [Output] cell do nothing useful; worse, when
    fed only by free-running sources (control generators, index sources)
    they would fire forever.  [reachable_to_outputs] rebuilds the graph
    keeping only cells from which an [Output] is reachable, plus the arcs
    among them. *)

val reachable_to_outputs : Graph.t -> Graph.t * int array
(** Returns the pruned graph and the old-id → new-id map ([-1] for removed
    cells).  [Input] cells are always kept (their packets arrive whether
    used or not); attach sinks to any now-open slots afterwards. *)
