(** Runtime values carried by result packets.

    The static dataflow machine of the paper carries scalar operands only;
    arrays exist as {e sequences} of these packets (Section 3: "we regard an
    array as simply a sequence of values passed in succession"). *)

type t = Int of int | Real of float | Bool of bool

exception Type_clash of string

let clash fmt = Printf.ksprintf (fun s -> raise (Type_clash s)) fmt

let to_real = function
  | Int i -> float_of_int i
  | Real f -> f
  | Bool _ -> clash "boolean packet used as a number"

let to_bool = function
  | Bool b -> b
  | Int _ | Real _ -> clash "numeric packet used as a boolean"

let pp ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Real f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.fprintf ppf "%b" b

let to_string v = Format.asprintf "%a" pp v

let equal ?(eps = 0.) a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | (Int _ | Real _), (Int _ | Real _) ->
    Float.abs (to_real a -. to_real b) <= eps
  | _ -> false
