(** Graphviz export of instruction graphs, for inspecting compiled code
    against the paper's figures. *)

val to_dot : ?name:string -> Graph.t -> string
(** DOT source.  Gates, merges, FIFOs, sources and sinks get distinct
    shapes; constant operands are shown in the node label; switch arcs are
    annotated T/F. *)

val write_file : string -> Graph.t -> unit
(** Write [to_dot] output to a path. *)
