(* Rewrites are expressed through one generic copy: [expand] either keeps a
   node (None) or provides, in the new graph, an attachment point for each
   of its input ports and each of its output slots. *)

type expansion = {
  in_ports : (int * int) array;   (* new (node, port) per old input port *)
  out_slots : (int * int) array;  (* new (node, slot) per old output slot *)
}

let copy_with g expand =
  let ng = Graph.create () in
  let n = Graph.node_count g in
  let in_map = Array.make n [||] in
  let out_map = Array.make n [||] in
  for id = 0 to n - 1 do
    let node = Graph.node g id in
    match expand ng node with
    | Some { in_ports; out_slots } ->
      in_map.(id) <- in_ports;
      out_map.(id) <- out_slots
    | None ->
      let nid = Graph.add ng ~label:node.Graph.label node.Graph.op node.Graph.inputs in
      in_map.(id) <-
        Array.init (Array.length node.Graph.inputs) (fun p -> (nid, p));
      out_map.(id) <-
        Array.init (Array.length node.Graph.dests) (fun s -> (nid, s))
  done;
  Graph.iter_nodes g (fun node ->
      Array.iteri
        (fun slot dests ->
          let src, nslot = out_map.(node.Graph.id).(slot) in
          List.iter
            (fun { Graph.ep_node; ep_port } ->
              let dst, port = in_map.(ep_node).(ep_port) in
              Graph.connect_slot ng ~src ~slot:nslot ~dst ~port)
            dests)
        node.Graph.dests);
  ng

let expand_fifos g =
  copy_with g (fun ng node ->
      match node.Graph.op with
      | Opcode.Fifo k ->
        assert (k >= 1);
        let first =
          Graph.add ng
            ~label:(node.Graph.label ^ ".0")
            Opcode.Id [| node.Graph.inputs.(0) |]
        in
        let last = ref first in
        for j = 1 to k - 1 do
          let next =
            Graph.add ng
              ~label:(Printf.sprintf "%s.%d" node.Graph.label j)
              Opcode.Id [| Graph.In_arc |]
          in
          Graph.connect ng ~src:!last ~dst:next ~port:0;
          last := next
        done;
        Some { in_ports = [| (first, 0) |]; out_slots = [| (!last, 0) |] }
      | _ -> None)

(* Build a balanced OR tree over nodes whose outputs are all at the same
   pipeline depth; odd leftovers pass through an Id so every path keeps
   equal length. *)
let rec or_tree ng = function
  | [] -> invalid_arg "or_tree: empty"
  | [ x ] -> x
  | xs ->
    let rec pair = function
      | a :: b :: rest ->
        let n = Graph.add ng ~label:"OR" (Opcode.Logic Opcode.Or)
            [| Graph.In_arc; Graph.In_arc |]
        in
        Graph.connect ng ~src:a ~dst:n ~port:0;
        Graph.connect ng ~src:b ~dst:n ~port:1;
        n :: pair rest
      | [ a ] ->
        let n = Graph.add ng ~label:"ID" Opcode.Id [| Graph.In_arc |] in
        Graph.connect ng ~src:a ~dst:n ~port:0;
        [ n ]
      | [] -> []
    in
    or_tree ng (pair xs)

(* Free-running index counter: ADD(+1) in a 2-cycle with an ID; the single
   token is preloaded as -1 on the ADD so the first emitted value is 0.  An
   even loop of 2 cells with 1 token runs at the maximal rate 1/2. *)
let build_counter ng label =
  let add =
    Graph.add ng ~label:(label ^ ".ctr")
      (Opcode.Arith Opcode.Add)
      [| Graph.In_arc_init (Value.Int (-1)); Graph.In_const (Value.Int 1) |]
  in
  let back = Graph.add ng ~label:(label ^ ".fb") Opcode.Id [| Graph.In_arc |] in
  Graph.connect ng ~src:add ~dst:back ~port:0;
  Graph.connect ng ~src:back ~dst:add ~port:0;
  add

let build_generator ng label (seq : Ctlseq.t) =
  let p = Ctlseq.period seq in
  let add = build_counter ng label in
  let pos =
    Graph.add ng ~label:(label ^ ".mod")
      (Opcode.Arith Opcode.Mod)
      [| Graph.In_arc; Graph.In_const (Value.Int p) |]
  in
  Graph.connect ng ~src:add ~dst:pos ~port:0;
  (* True runs as [start, stop] windows over position 0..p-1. *)
  let windows =
    let _, acc =
      List.fold_left
        (fun (start, acc) { Ctlseq.value; count } ->
          let acc =
            if value then (start, start + count - 1) :: acc else acc
          in
          (start + count, acc))
        (0, []) seq.Ctlseq.segments
    in
    List.rev acc
  in
  let leaf (lo, hi) =
    (* Single-sided windows save a comparator but would unbalance the OR
       tree, so each window is uniformly GE && LE. *)
    let ge =
      Graph.add ng ~label:"GE" (Opcode.Compare Opcode.Ge)
        [| Graph.In_arc; Graph.In_const (Value.Int lo) |]
    in
    let le =
      Graph.add ng ~label:"LE" (Opcode.Compare Opcode.Le)
        [| Graph.In_arc; Graph.In_const (Value.Int hi) |]
    in
    Graph.connect ng ~src:pos ~dst:ge ~port:0;
    Graph.connect ng ~src:pos ~dst:le ~port:0;
    let conj =
      Graph.add ng ~label:"AND" (Opcode.Logic Opcode.And)
        [| Graph.In_arc; Graph.In_arc |]
    in
    Graph.connect ng ~src:ge ~dst:conj ~port:0;
    Graph.connect ng ~src:le ~dst:conj ~port:1;
    conj
  in
  match windows with
  | [] ->
    (* constant-false stream: position < 0 never holds *)
    let n =
      Graph.add ng ~label:"FALSE" (Opcode.Compare Opcode.Lt)
        [| Graph.In_arc; Graph.In_const (Value.Int 0) |]
    in
    Graph.connect ng ~src:pos ~dst:n ~port:0;
    n
  | ws -> or_tree ng (List.map leaf ws)

let expand_bool_sources g =
  copy_with g (fun ng node ->
      match node.Graph.op with
      | Opcode.Bool_source seq when seq.Ctlseq.cyclic ->
        let out = build_generator ng node.Graph.label seq in
        Some { in_ports = [||]; out_slots = [| (out, 0) |] }
      | _ -> None)

let expand_iotas g =
  copy_with g (fun ng node ->
      match node.Graph.op with
      | Opcode.Iota { lo; hi; rep } ->
        let add = build_counter ng node.Graph.label in
        let tick =
          if rep = 1 then add
          else begin
            let d =
              Graph.add ng
                ~label:(node.Graph.label ^ ".rep")
                (Opcode.Arith Opcode.Div)
                [| Graph.In_arc; Graph.In_const (Value.Int rep) |]
            in
            Graph.connect ng ~src:add ~dst:d ~port:0;
            d
          end
        in
        let pos =
          Graph.add ng
            ~label:(node.Graph.label ^ ".mod")
            (Opcode.Arith Opcode.Mod)
            [| Graph.In_arc; Graph.In_const (Value.Int (hi - lo + 1)) |]
        in
        Graph.connect ng ~src:tick ~dst:pos ~port:0;
        let out =
          if lo = 0 then pos
          else begin
            let shifted =
              Graph.add ng
                ~label:(node.Graph.label ^ ".base")
                (Opcode.Arith Opcode.Add)
                [| Graph.In_arc; Graph.In_const (Value.Int lo) |]
            in
            Graph.connect ng ~src:pos ~dst:shifted ~port:0;
            shifted
          end
        in
        Some { in_ports = [||]; out_slots = [| (out, 0) |] }
      | _ -> None)

let expand_all g = expand_fifos (expand_iotas (expand_bool_sources g))
