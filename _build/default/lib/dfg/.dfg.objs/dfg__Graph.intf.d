lib/dfg/graph.mli: Opcode Value
