lib/dfg/macro.mli: Graph
