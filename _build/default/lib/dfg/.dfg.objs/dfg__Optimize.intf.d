lib/dfg/optimize.mli: Graph
