lib/dfg/ctlseq.mli:
