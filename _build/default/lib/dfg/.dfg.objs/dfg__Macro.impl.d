lib/dfg/macro.ml: Array Ctlseq Graph List Opcode Printf Value
