lib/dfg/text.ml: Array Buffer Ctlseq Fun Graph List Opcode Printf String Value
