lib/dfg/ctlseq.ml: Fun List Printf String
