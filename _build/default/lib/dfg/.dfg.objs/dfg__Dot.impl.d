lib/dfg/dot.ml: Array Buffer Fun Graph List Opcode Printf String Value
