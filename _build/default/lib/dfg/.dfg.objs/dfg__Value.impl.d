lib/dfg/value.ml: Float Format Printf
