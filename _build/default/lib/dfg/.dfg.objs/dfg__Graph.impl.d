lib/dfg/graph.ml: Array Hashtbl List Opcode Option Printf String Value
