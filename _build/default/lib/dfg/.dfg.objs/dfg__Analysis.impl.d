lib/dfg/analysis.ml: Array Graph Hashtbl List Opcode Printf Queue
