lib/dfg/prune.ml: Array Graph List Opcode Queue
