lib/dfg/opcode.ml: Ctlseq Float Printf Value
