lib/dfg/text.mli: Graph
