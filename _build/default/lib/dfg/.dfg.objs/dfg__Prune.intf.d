lib/dfg/prune.mli: Graph
