lib/dfg/optimize.ml: Analysis Array Fun Graph Hashtbl List Opcode Queue Value
