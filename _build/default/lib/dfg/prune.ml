let reachable_to_outputs g =
  let n = Graph.node_count g in
  let live = Array.make n false in
  (* reverse BFS from outputs *)
  let preds = Array.make n [] in
  Graph.iter_nodes g (fun node ->
      Array.iter
        (fun dests ->
          List.iter
            (fun { Graph.ep_node; _ } ->
              preds.(ep_node) <- node.Graph.id :: preds.(ep_node))
            dests)
        node.Graph.dests);
  let queue = Queue.create () in
  Graph.iter_nodes g (fun node ->
      match node.Graph.op with
      | Opcode.Output _ ->
        live.(node.Graph.id) <- true;
        Queue.add node.Graph.id queue
      | Opcode.Input _ ->
        (* input streams always arrive; a consumerless input is kept and
           its packets discarded (a Sink is attached by the caller) *)
        live.(node.Graph.id) <- true
      | _ -> ());
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun p ->
        if not live.(p) then begin
          live.(p) <- true;
          Queue.add p queue
        end)
      preds.(v)
  done;
  let ng = Graph.create () in
  let id_map = Array.make n (-1) in
  Graph.iter_nodes g (fun node ->
      if live.(node.Graph.id) then
        id_map.(node.Graph.id) <-
          Graph.add ng ~label:node.Graph.label node.Graph.op node.Graph.inputs);
  Graph.iter_nodes g (fun node ->
      if live.(node.Graph.id) then
        Array.iteri
          (fun slot dests ->
            List.iter
              (fun { Graph.ep_node; ep_port } ->
                if live.(ep_node) then
                  Graph.connect_slot ng
                    ~src:id_map.(node.Graph.id)
                    ~slot ~dst:id_map.(ep_node) ~port:ep_port)
              dests)
          node.Graph.dests);
  (ng, id_map)
