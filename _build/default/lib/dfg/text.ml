exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Emission                                                             *)
(* ------------------------------------------------------------------ *)

(* Reals are emitted as hexadecimal floats so values round-trip exactly. *)
let value_to_string = function
  | Value.Int i -> Printf.sprintf "int:%d" i
  | Value.Real f -> Printf.sprintf "real:%h" f
  | Value.Bool b -> Printf.sprintf "bool:%b" b

let seq_to_string (seq : Ctlseq.t) =
  let runs =
    String.concat ""
      (List.map
         (fun { Ctlseq.value; count } ->
           Printf.sprintf "%c%d" (if value then 'T' else 'F') count)
         seq.Ctlseq.segments)
  in
  runs ^ if seq.Ctlseq.cyclic then "*" else ""

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let op_to_string = function
  | Opcode.Id -> "ID"
  | Opcode.Arith a -> Opcode.arith_name a
  | Opcode.Compare c -> Opcode.cmp_name c
  | Opcode.Logic l -> Opcode.logic_name l
  | Opcode.Neg -> "NEG"
  | Opcode.Not -> "NOT"
  | Opcode.Math m -> Opcode.math_name m
  | Opcode.Tgate -> "TGATE"
  | Opcode.Fgate -> "FGATE"
  | Opcode.Switch -> "SWITCH"
  | Opcode.Merge -> "MERG"
  | Opcode.Merge_switch -> "MERGSW"
  | Opcode.Fifo k -> Printf.sprintf "FIFO(%d)" k
  | Opcode.Bool_source seq -> Printf.sprintf "CTL(%s)" (seq_to_string seq)
  | Opcode.Iota { lo; hi; rep } -> Printf.sprintf "IOTA(%d,%d,%d)" lo hi rep
  | Opcode.Input name -> Printf.sprintf "IN(%s)" name
  | Opcode.Output name -> Printf.sprintf "OUT(%s)" name
  | Opcode.Sink -> "SINK"

let binding_to_string = function
  | Graph.In_arc -> "arc"
  | Graph.In_arc_init v -> "init:" ^ value_to_string v
  | Graph.In_const v -> "const:" ^ value_to_string v

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "dfg 1 cells=%d\n" (Graph.node_count g));
  Graph.iter_nodes g (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "cell %d %s \"%s\" in=[%s] out=[%s]\n" n.Graph.id
           (op_to_string n.Graph.op)
           (escape n.Graph.label)
           (String.concat ", "
              (Array.to_list (Array.map binding_to_string n.Graph.inputs)))
           (String.concat " | "
              (Array.to_list
                 (Array.map
                    (fun dests ->
                      String.concat " "
                        (List.map
                           (fun { Graph.ep_node; ep_port } ->
                             Printf.sprintf "(%d,%d)" ep_node ep_port)
                           (List.rev dests)))
                    n.Graph.dests)))));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

let parse_value s =
  match String.index_opt s ':' with
  | None -> fail "malformed value %S" s
  | Some i -> (
    let kind = String.sub s 0 i in
    let body = String.sub s (i + 1) (String.length s - i - 1) in
    match kind with
    | "int" -> (
      match int_of_string_opt body with
      | Some v -> Value.Int v
      | None -> fail "bad integer %S" body)
    | "real" -> (
      match float_of_string_opt body with
      | Some v -> Value.Real v
      | None -> fail "bad real %S" body)
    | "bool" -> (
      match bool_of_string_opt body with
      | Some v -> Value.Bool v
      | None -> fail "bad boolean %S" body)
    | _ -> fail "unknown value kind %S" kind)

let parse_seq s =
  let cyclic = String.length s > 0 && s.[String.length s - 1] = '*' in
  let body = if cyclic then String.sub s 0 (String.length s - 1) else s in
  let runs = ref [] in
  let i = ref 0 in
  let len = String.length body in
  while !i < len do
    let v =
      match body.[!i] with
      | 'T' -> true
      | 'F' -> false
      | c -> fail "bad control sequence char %C" c
    in
    incr i;
    let start = !i in
    while !i < len && body.[!i] >= '0' && body.[!i] <= '9' do
      incr i
    done;
    if !i = start then fail "missing run length in %S" body;
    runs := (v, int_of_string (String.sub body start (!i - start))) :: !runs
  done;
  Ctlseq.make ~cyclic (List.rev !runs)

let parse_op s =
  let plain =
    [
      ("ID", Opcode.Id);
      ("ADD", Opcode.Arith Opcode.Add); ("SUB", Opcode.Arith Opcode.Sub);
      ("MULT", Opcode.Arith Opcode.Mul); ("DIV", Opcode.Arith Opcode.Div);
      ("MIN", Opcode.Arith Opcode.Min); ("MAX", Opcode.Arith Opcode.Max);
      ("MOD", Opcode.Arith Opcode.Mod);
      ("LT", Opcode.Compare Opcode.Lt); ("LE", Opcode.Compare Opcode.Le);
      ("GT", Opcode.Compare Opcode.Gt); ("GE", Opcode.Compare Opcode.Ge);
      ("EQ", Opcode.Compare Opcode.Eq); ("NE", Opcode.Compare Opcode.Ne);
      ("AND", Opcode.Logic Opcode.And); ("OR", Opcode.Logic Opcode.Or);
      ("NEG", Opcode.Neg); ("NOT", Opcode.Not);
      ("SQRT", Opcode.Math Opcode.Sqrt); ("ABS", Opcode.Math Opcode.Abs);
      ("EXP", Opcode.Math Opcode.Exp); ("LN", Opcode.Math Opcode.Ln);
      ("SIN", Opcode.Math Opcode.Sin); ("COS", Opcode.Math Opcode.Cos);
      ("TGATE", Opcode.Tgate); ("FGATE", Opcode.Fgate);
      ("SWITCH", Opcode.Switch); ("MERG", Opcode.Merge);
      ("MERGSW", Opcode.Merge_switch); ("SINK", Opcode.Sink);
    ]
  in
  match List.assoc_opt s plain with
  | Some op -> op
  | None -> (
    match String.index_opt s '(' with
    | Some i when s.[String.length s - 1] = ')' -> (
      let head = String.sub s 0 i in
      let body = String.sub s (i + 1) (String.length s - i - 2) in
      match head with
      | "FIFO" -> (
        match int_of_string_opt body with
        | Some k when k >= 1 -> Opcode.Fifo k
        | _ -> fail "bad FIFO capacity %S" body)
      | "CTL" -> Opcode.Bool_source (parse_seq body)
      | "IOTA" -> (
        match String.split_on_char ',' body with
        | [ lo; hi; rep ] -> (
          match
            (int_of_string_opt lo, int_of_string_opt hi, int_of_string_opt rep)
          with
          | Some lo, Some hi, Some rep -> Opcode.Iota { lo; hi; rep }
          | _ -> fail "bad IOTA parameters %S" body)
        | _ -> fail "bad IOTA parameters %S" body)
      | "IN" -> Opcode.Input body
      | "OUT" -> Opcode.Output body
      | _ -> fail "unknown opcode %S" s)
    | _ -> fail "unknown opcode %S" s)

(* Extract the quoted label starting at position [i]; returns (label,
   position after the closing quote). *)
let parse_label line i =
  if i >= String.length line || line.[i] <> '"' then
    fail "expected label quote in %S" line;
  let buf = Buffer.create 16 in
  let rec go j =
    if j >= String.length line then fail "unterminated label in %S" line
    else
      match line.[j] with
      | '\\' when j + 1 < String.length line ->
        Buffer.add_char buf line.[j + 1];
        go (j + 2)
      | '"' -> j + 1
      | c ->
        Buffer.add_char buf c;
        go (j + 1)
  in
  let after = go (i + 1) in
  (Buffer.contents buf, after)

let find_bracketed ~key line =
  let marker = key ^ "=[" in
  let mlen = String.length marker in
  let rec scan j =
    if j + mlen > String.length line then
      fail "missing %s=[...] in %S" key line
    else if String.sub line j mlen = marker then j + mlen
    else scan (j + 1)
  in
  let start = scan 0 in
  match String.index_from_opt line start ']' with
  | None -> fail "unterminated %s=[...] in %S" key line
  | Some close -> String.sub line start (close - start)

let split_trim sep s =
  String.split_on_char sep s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_binding s =
  if s = "arc" then Graph.In_arc
  else if String.length s > 5 && String.sub s 0 5 = "init:" then
    Graph.In_arc_init (parse_value (String.sub s 5 (String.length s - 5)))
  else if String.length s > 6 && String.sub s 0 6 = "const:" then
    Graph.In_const (parse_value (String.sub s 6 (String.length s - 6)))
  else fail "malformed binding %S" s

let parse_dest s =
  (* "(7,0)" *)
  if String.length s < 5 || s.[0] <> '(' || s.[String.length s - 1] <> ')'
  then fail "malformed destination %S" s
  else
    match String.split_on_char ',' (String.sub s 1 (String.length s - 2)) with
    | [ n; p ] -> (
      match (int_of_string_opt n, int_of_string_opt p) with
      | Some n, Some p -> (n, p)
      | _ -> fail "malformed destination %S" s)
    | _ -> fail "malformed destination %S" s

let of_string_unsafe text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> fail "empty input"
  | headline :: cells ->
    if not (String.length headline >= 5 && String.sub headline 0 5 = "dfg 1")
    then fail "missing 'dfg 1' header";
    let g = Graph.create () in
    let pending_arcs = ref [] in
    List.iteri
      (fun idx line ->
        match String.split_on_char ' ' line with
        | "cell" :: id :: op :: _rest ->
          let id =
            match int_of_string_opt id with
            | Some id -> id
            | None -> fail "bad cell id in %S" line
          in
          if id <> idx then fail "cell ids must be dense: got %d at %d" id idx;
          let op = parse_op op in
          (* label sits after the opcode *)
          let label_start =
            match String.index_opt line '"' with
            | Some i -> i
            | None -> fail "missing label in %S" line
          in
          let label, _ = parse_label line label_start in
          let bindings =
            find_bracketed ~key:"in" line |> split_trim ','
            |> List.map parse_binding |> Array.of_list
          in
          let new_id = Graph.add g ~label op bindings in
          assert (new_id = id);
          let out = find_bracketed ~key:"out" line in
          List.iteri
            (fun slot slot_body ->
              List.iter
                (fun dest ->
                  let dst, port = parse_dest dest in
                  pending_arcs := (id, slot, dst, port) :: !pending_arcs)
                (split_trim ' ' slot_body))
            (String.split_on_char '|' out)
        | _ -> fail "malformed cell line %S" line)
      cells;
    List.iter
      (fun (src, slot, dst, port) ->
        if dst < 0 || dst >= Graph.node_count g then
          fail "destination %d out of range" dst;
        Graph.connect_slot g ~src ~slot ~dst ~port)
      (List.rev !pending_arcs);
    g

let of_string text =
  (* malformed input can also surface as Invalid_argument from graph
     construction (bad arity, bad ports): normalize to Parse_error *)
  try of_string_unsafe text with
  | Invalid_argument msg -> fail "%s" msg
  | Failure msg -> fail "%s" msg

let write_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
