(* Canonical key of a cell: opcode + per-port binding where arc ports are
   resolved to the representative of their producer.  Processing in
   topological order guarantees producers are canonicalized first; nodes
   in cycles are excluded (their keys would be self-referential). *)

type port_key = K_const of Value.t | K_arc of int * int

let mergeable (n : Graph.node) ~in_cycle =
  (not in_cycle.(n.Graph.id))
  &&
  match n.Graph.op with
  | Opcode.Input _ | Opcode.Output _ | Opcode.Sink -> false
  | _ -> true

let analyze g =
  let n = Graph.node_count g in
  let in_cycle = Array.make n false in
  List.iter
    (fun comp -> List.iter (fun v -> in_cycle.(v) <- true) comp)
    (Analysis.cycles g);
  (* representative of each node after merging *)
  let rep = Array.init n Fun.id in
  let producers = Graph.producers g in
  let table = Hashtbl.create 64 in
  let order =
    match Analysis.topological_order g with
    | Some order -> order
    | None ->
      (* process acyclic part only: nodes not in any cycle, in an order
         where producers come first (Kahn over the subgraph) *)
      let indeg = Array.make n 0 in
      Graph.iter_nodes g (fun node ->
          Array.iter
            (fun dests ->
              List.iter
                (fun { Graph.ep_node; _ } ->
                  if not (in_cycle.(node.Graph.id) || in_cycle.(ep_node))
                  then indeg.(ep_node) <- indeg.(ep_node) + 1)
                dests)
            node.Graph.dests);
      let queue = Queue.create () in
      for v = 0 to n - 1 do
        if (not in_cycle.(v)) && indeg.(v) = 0 then Queue.add v queue
      done;
      let acc = ref [] in
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        acc := v :: !acc;
        List.iter
          (fun s ->
            if not (in_cycle.(v) || in_cycle.(s)) then begin
              indeg.(s) <- indeg.(s) - 1;
              if indeg.(s) = 0 then Queue.add s queue
            end)
          (Analysis.successors g v)
      done;
      List.rev !acc
  in
  List.iter
    (fun id ->
      let node = Graph.node g id in
      if mergeable node ~in_cycle then begin
        let key_ok = ref true in
        let ports =
          Array.mapi
            (fun port binding ->
              match binding with
              | Graph.In_const v -> K_const v
              | Graph.In_arc | Graph.In_arc_init _ -> (
                match producers.(id).(port) with
                | [| (src, slot) |] ->
                  if in_cycle.(src) then key_ok := false;
                  K_arc (rep.(src), slot)
                | _ ->
                  key_ok := false;
                  K_arc (-1, -1)))
            node.Graph.inputs
        in
        (* preloaded tokens are load-time state: include them in the key *)
        let init_state =
          Array.map
            (fun b ->
              match b with Graph.In_arc_init v -> Some v | _ -> None)
            node.Graph.inputs
        in
        if !key_ok then begin
          let key = (node.Graph.op, ports, init_state) in
          match Hashtbl.find_opt table key with
          | Some canonical -> rep.(id) <- canonical
          | None -> Hashtbl.add table key id
        end
      end)
    order;
  rep

let cse_stats g =
  let rep = analyze g in
  Array.fold_left ( + ) 0
    (Array.mapi (fun id r -> if id <> r then 1 else 0) rep)

let cse g =
  let n = Graph.node_count g in
  let rep = analyze g in
  let ng = Graph.create () in
  let id_map = Array.make n (-1) in
  Graph.iter_nodes g (fun node ->
      if rep.(node.Graph.id) = node.Graph.id then
        id_map.(node.Graph.id) <-
          Graph.add ng ~label:node.Graph.label node.Graph.op node.Graph.inputs);
  (* Every arc (u -> v.port) becomes (rep u -> v.port); arcs into merged
     cells are dropped (the survivor already receives the equivalent
     operands).  A port still has exactly one producer afterwards. *)
  Graph.iter_nodes g (fun node ->
      Array.iteri
        (fun slot dests ->
          List.iter
            (fun { Graph.ep_node; ep_port } ->
              if rep.(ep_node) = ep_node then
                Graph.connect_slot ng
                  ~src:id_map.(rep.(node.Graph.id))
                  ~slot
                  ~dst:id_map.(ep_node)
                  ~port:ep_port)
            dests)
        node.Graph.dests);
  let final_map = Array.init n (fun id -> id_map.(rep.(id))) in
  (ng, final_map)
