module C = Val_lang.Classify

let compile g ~params ~arrays (pf : C.prim_forall) =
  let ctx =
    Expr_compile.new_block_ctx g ~params ~arrays ~index_vars:pf.C.pf_ranges
  in
  let env =
    List.fold_left
      (fun env d ->
        Expr_compile.bind env d.Val_lang.Ast.def_name
          (Expr_compile.compile_expr ctx env d.Val_lang.Ast.def_rhs))
      Expr_compile.top_env pf.C.pf_defs
  in
  let rv = Expr_compile.compile_expr ctx env pf.C.pf_body in
  (ctx, Expr_compile.materialize ctx rv)
