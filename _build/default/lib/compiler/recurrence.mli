module A = Val_lang.Ast

(** Symbolic analysis of first-order recurrences (Section 7).

    A primitive for-iter defines [x_i = F(a_i, x_{i-1})].  When the body is
    {e affine} in the previous element,

    [x_i = P_i * x_{i-1} + Q_i],

    the recurrence has the companion function
    [G((p1,q1),(p2,q2)) = (p1*p2, p1*q2 + q1)] (with
    [F(a, F(b, x)) = F(G(a,b), x)]), which is associative — the key fact
    behind the paper's companion pipeline (Figure 8) and the log-depth
    composition tree. *)

type analysis =
  | Affine of { coef : A.expr; shift : A.expr }
      (** [x_i = coef * x_{i-1} + shift]; both expressions are primitive in
          the counter and do not reference the accumulator. *)
  | Not_affine of string
      (** why no companion function was found (the paper: "there are many
          recurrence functions for which no companion function is known");
          such loops still compile with Todd's direct scheme. *)

val analyze :
  acc:string -> elt:A.scalar_type -> A.expr -> analysis
(** Decompose the appended-element expression.  [let] definitions are
    inlined first (the expression is applicative, so substitution is
    semantics-preserving). *)

val inline_lets : A.expr -> A.expr
(** Capture-avoiding inlining of [let] definitions (exposed for tests). *)

val subst : (string * A.expr) list -> A.expr -> A.expr
(** Capture-aware substitution of free variables (inner [let] definitions
    shadow).  Used by the compiler to resolve index-only definitions when
    deciding whether a condition is static. *)

val companion_apply :
  (float * float) -> (float * float) -> float * float
(** The concrete companion function [G] on coefficient pairs — used by
    tests to check associativity and by the benchmark's log-depth tree. *)

val contains_acc : acc:string -> A.expr -> bool
(** Whether the expression references [acc[...]]. *)
