open Dfg
module A = Val_lang.Ast

(** Compilation of primitive expressions to pipelined instruction graphs
    (Theorem 1 of the paper).

    An expression over index variables [i, j, ...] is compiled to a
    subgraph producing one result packet per index point, streamed in
    row-major index order:

    - array selections [A[i+m]] become T-gates whose boolean control
      sequence selects the needed window out of the producer's stream and
      discards the rest (Figure 4); the gate's window start is recorded as
      its {e phase shift} for the balancer;
    - index variables become [Iota] sources;
    - conditionals follow Figure 5: every stream operand entering an arm
      passes through a [Switch] steered by the condition (sharing one
      switch per operand between the two arms), the arms compute only
      their own elements, and a [Merge] recombines them under the same
      control (the control path FIFO comes from balancing);
    - constant subexpressions fold at compile time and appear as immediate
      operand fields. *)

exception Unsupported of string

type rval =
  | Const of Value.t       (* compile-time constant *)
  | Stream of int * int    (* producer (node, out slot) *)

type array_src = {
  src_node : int;                (* producer of the full element stream *)
  src_ranges : (int * int) list; (* its index ranges, one per dimension *)
}

type block_ctx = {
  g : Graph.t;
  shifts : (int, int) Hashtbl.t;        (* node -> window phase shift *)
  windows : (string * int list * bool array option, rval) Hashtbl.t;
      (* selection gates, keyed by array, offsets, and the static arm mask
         under which the window was built (None = the full index range) *)
  iotas : (string, rval) Hashtbl.t;
  params : (string * Value.t) list;     (* params and scalar inputs *)
  arrays : (string * array_src) list;
  index_vars : (string * int * int) list; (* (var, lo, hi), outermost first *)
  points : (string * int) list array Lazy.t;
      (* index assignment per flat output position, row-major *)
}

type env
(** Scalar bindings plus the conditional-arm switching context. *)

val new_block_ctx :
  Graph.t ->
  params:(string * Value.t) list ->
  arrays:(string * array_src) list ->
  index_vars:(string * int * int) list ->
  block_ctx

val top_env : env
(** No bindings, no conditional layers. *)

val bind : env -> string -> rval -> env
(** Bind a scalar name (a [let] definition) at the current layer depth. *)

val compile_expr : block_ctx -> env -> A.expr -> rval
(** @raise Unsupported on constructs outside the compilable class (the
    classifier normally rejects these first). *)

val seed_window : block_ctx -> string -> int list -> rval -> unit
(** Pre-bind a selection [name[i+off]] to an existing stream — used by the
    for-iter compiler to route the accumulator reference [X[i-1]] to the
    feedback arc. *)

val connect_rval : block_ctx -> rval -> dst:int -> port:int -> unit
(** Wire an rval into an instruction port: arc for streams, immediate
    operand for constants.
    @raise Invalid_argument if the port is not declared [In_const] for a
    constant rval (build nodes with {!binding_for}). *)

val binding_for : rval -> Graph.binding
(** [In_arc] for streams, [In_const v] for constants. *)

val materialize : block_ctx -> rval -> int
(** Turn an rval into a stream node: streams pass through (inserting an
    [Id] when the producer is tapped on a non-zero slot); constants become
    a constant-operand T-gate paced by an always-true control source. *)

val add_sinks_to_open_slots : Graph.t -> unit
(** Attach a [Sink] to every output slot that has no destination (switch
    slots whose arm never uses the operand — the paper's "discarded so
    they do not cause jams"). *)
