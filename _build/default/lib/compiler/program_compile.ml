open Dfg
module A = Val_lang.Ast
module C = Val_lang.Classify
module E = Expr_compile

type options = {
  scheme : Foriter_compile.scheme;
  companion_distance : int;
  balance : [ `None | `Naive | `Reduced | `Optimal ];
  expand_macros : bool;
  expose : [ `All | `Last ];
  cse : bool;
}

let default_options =
  {
    scheme = Foriter_compile.Auto;
    companion_distance = 2;
    balance = `Optimal;
    expand_macros = false;
    expose = `All;
    cse = true;
  }

type compiled = {
  cp_graph : Graph.t;
  cp_outputs : (string * C.array_shape) list;
  cp_inputs : (string * C.array_shape) list;
  cp_shifts : (int, int) Hashtbl.t;
  cp_schemes : (string * string) list;
}

let wave_size (shape : C.array_shape) =
  List.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 shape.C.sh_ranges

let scalar_value ty name bindings =
  match List.assoc_opt name bindings with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf
         "Program_compile: scalar input %s (%s) needs a load-time value"
         name
         (A.scalar_type_name ty))

let compile ?(options = default_options) ?(scalar_inputs = [])
    (pp : C.pipe_program) =
  let g = Graph.create () in
  let params =
    List.map (fun (n, v) -> (n, Value.Int v)) pp.C.pp_params
    @ List.map
        (fun (n, ty) -> (n, scalar_value ty n scalar_inputs))
        pp.C.pp_scalar_inputs
  in
  let input_arrays =
    List.map
      (fun (name, shape) ->
        let node = Graph.add g (Opcode.Input name) [||] in
        (name, (shape, { E.src_node = node; src_ranges = shape.C.sh_ranges })))
      pp.C.pp_array_inputs
  in
  let shifts = Hashtbl.create 64 in
  let last_block =
    match List.rev pp.C.pp_blocks with
    | [] -> invalid_arg "Program_compile: program has no blocks"
    | b :: _ -> C.block_name b
  in
  let _, outputs_rev, schemes_rev =
    List.fold_left
      (fun (arrays, outputs, schemes) block ->
        let name = C.block_name block in
        let shape = C.block_shape block in
        let srcs = List.map (fun (n, (_, src)) -> (n, src)) arrays in
        let ctx, out_node, scheme_used =
          match block with
          | C.Pb_forall pf ->
            let ctx, out = Forall_compile.compile g ~params ~arrays:srcs pf in
            (ctx, out, "forall/pipeline")
          | C.Pb_foriter pi ->
            let scheme_used =
              match
                (options.scheme, Foriter_compile.analyze_scheme options.scheme pi)
              with
              | Foriter_compile.Todd, _ -> "for-iter/todd"
              | _, Ok (Recurrence.Affine _) -> "for-iter/companion"
              | _, (Ok (Recurrence.Not_affine _) | Error _) -> "for-iter/todd"
            in
            let ctx, out =
              Foriter_compile.compile ~scheme:options.scheme
                ~distance:options.companion_distance g ~params ~arrays:srcs
                pi
            in
            (ctx, out, scheme_used)
        in
        Hashtbl.iter (fun k v -> Hashtbl.replace shifts k v) ctx.E.shifts;
        let expose =
          match options.expose with `All -> true | `Last -> name = last_block
        in
        if expose then begin
          let out = Graph.add g (Opcode.Output name) [| Graph.In_arc |] in
          Graph.connect g ~src:out_node ~dst:out ~port:0
        end;
        let arrays =
          (name, (shape, { E.src_node = out_node; src_ranges = shape.C.sh_ranges }))
          :: arrays
        in
        let outputs = if expose then (name, shape) :: outputs else outputs in
        (arrays, outputs, (name, scheme_used) :: schemes))
      (input_arrays, [], []) pp.C.pp_blocks
  in
  (* drop cells that cannot reach any output (e.g. subgraphs made dead by
     static-condition folding), then terminate remaining open slots *)
  let remap_shifts shifts id_map =
    let remapped = Hashtbl.create (Hashtbl.length shifts) in
    Hashtbl.iter
      (fun old s ->
        if old < Array.length id_map && id_map.(old) >= 0 then
          Hashtbl.replace remapped id_map.(old) s)
      shifts;
    remapped
  in
  let g, id_map = Prune.reachable_to_outputs g in
  let shifts = remap_shifts shifts id_map in
  (* cross-block common-subexpression elimination (duplicate control
     generators, selection gates, repeated arithmetic) *)
  let g, shifts =
    if options.cse then begin
      let g, id_map = Optimize.cse g in
      (g, remap_shifts shifts id_map)
    end
    else (g, shifts)
  in
  E.add_sinks_to_open_slots g;
  let shift id = Option.value ~default:0 (Hashtbl.find_opt shifts id) in
  let g =
    match options.balance with
    | `None -> g
    | (`Naive | `Reduced | `Optimal) as strategy ->
      Balance.Balancer.phase_balance ~strategy ~shift g
  in
  let g = if options.expand_macros then Macro.expand_all g else g in
  Graph.validate_exn g;
  {
    cp_graph = g;
    cp_outputs = List.rev outputs_rev;
    cp_inputs = List.map (fun (n, (shape, _)) -> (n, shape)) input_arrays;
    cp_shifts = shifts;
    cp_schemes = List.rev schemes_rev;
  }
