lib/compiler/forall_compile.ml: Expr_compile List Val_lang
