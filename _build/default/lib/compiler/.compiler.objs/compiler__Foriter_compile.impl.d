lib/compiler/foriter_compile.ml: Ctlseq Dfg Expr_compile Graph Hashtbl Opcode Printf Recurrence Val_lang Value
