lib/compiler/forall_compile.mli: Dfg Expr_compile Val_lang
