lib/compiler/foriter_compile.mli: Dfg Expr_compile Recurrence Val_lang
