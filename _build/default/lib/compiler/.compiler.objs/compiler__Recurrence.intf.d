lib/compiler/recurrence.mli: Val_lang
