lib/compiler/recurrence.ml: List Option Printf Val_lang
