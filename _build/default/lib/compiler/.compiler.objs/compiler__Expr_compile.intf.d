lib/compiler/expr_compile.mli: Dfg Graph Hashtbl Lazy Val_lang Value
