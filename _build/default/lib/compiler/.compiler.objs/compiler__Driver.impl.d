lib/compiler/driver.ml: Array Dfg Fun List Printf Program_compile Sim Val_lang Value
