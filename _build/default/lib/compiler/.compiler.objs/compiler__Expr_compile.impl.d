lib/compiler/expr_compile.ml: Array Ctlseq Dfg Fun Graph Hashtbl Lazy List Opcode Printf Recurrence String Val_lang Value
