lib/compiler/program_compile.mli: Dfg Foriter_compile Graph Hashtbl Val_lang Value
