lib/compiler/program_compile.ml: Array Balance Dfg Expr_compile Forall_compile Foriter_compile Graph Hashtbl List Macro Opcode Optimize Option Printf Prune Recurrence Val_lang Value
