lib/compiler/driver.mli: Dfg Program_compile Sim Val_lang Value
