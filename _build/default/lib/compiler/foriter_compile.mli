module C = Val_lang.Classify

(** Pipelined mapping of primitive for-iter expressions (Section 7).

    Two schemes are implemented:

    - {b Todd's direct scheme} (Figure 7): the appended-element expression
      is compiled with the accumulator reference [X[i-1]] wired to a
      feedback arc from a merge with conditional destinations
      ([Merge_switch]): the merge's result is forwarded as the block
      output unconditionally and fed back for all but the last element.
      For Example 2 the feedback cycle is MULT → ADD → MERG, 3 cells, so
      the initiation rate is limited to 1/3 (and in general to
      [1/(depth(E)+1)]).

    - {b The companion scheme} (Figure 8): when the recurrence is affine,
      [x_i = P_i x_{i-1} + Q_i], an acyclic {e companion pipeline}
      computes [c_i = G(a_i, a_{i-1})] — i.e. [c1_i = P_i P'_{i-1}],
      [c2_i = P_i Q'_{i-1} + Q_i] with the one-element-delayed streams
      primed by the identity pair (1, 0) — after which the loop computes
      [x_i = c1_i x_{i-2} + c2_i]: a 4-cell even-length cycle carrying two
      tokens, which sustains the maximal rate 1/2. *)

type scheme = Todd | Companion | Auto
(** [Auto] = companion when the recurrence analysis finds one (a "simple"
    for-iter, Theorem 3), Todd otherwise. *)

val compile :
  ?scheme:scheme ->
  ?distance:int ->
  Dfg.Graph.t ->
  params:(string * Dfg.Value.t) list ->
  arrays:(string * Expr_compile.array_src) list ->
  C.prim_foriter ->
  Expr_compile.block_ctx * int
(** Returns the block context and the node producing the output stream
    (index range [init_index .. last], the initial element first).
    [distance] (default 2, a power of two) sets the companion scheme's
    feedback distance: the coefficient streams are composed by a
    [log2 distance]-level tree of the companion function G (the paper's
    associativity remark), and the loop becomes an even ring of
    [2*distance] cells carrying [distance] tokens — still the maximal
    rate, but tolerant of [distance-1] extra stages of loop latency.
    @raise Expr_compile.Unsupported — notably when [scheme = Companion]
    but no companion function exists, when the initial element is not a
    compile-time constant, or when [distance] is not a power of two. *)

val analyze_scheme :
  scheme -> C.prim_foriter -> (Recurrence.analysis, string) result
(** The recurrence analysis the compiler would use (exposed for tests and
    reporting).  [Error] when the scheme is [Todd] (no analysis needed). *)
