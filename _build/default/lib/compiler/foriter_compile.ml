open Dfg
module A = Val_lang.Ast
module C = Val_lang.Classify
module E = Expr_compile

type scheme = Todd | Companion | Auto

let const_init ctx (pi : C.prim_foriter) =
  match E.compile_expr ctx E.top_env pi.C.pi_init with
  | E.Const v -> v
  | E.Stream _ ->
    raise
      (E.Unsupported
         (Printf.sprintf
            "for-iter %s: the initial element must be a compile-time \
             constant"
            pi.C.pi_name))

let ctl ctx label runs =
  Graph.add ctx.E.g ~label (Opcode.Bool_source (Ctlseq.make ~cyclic:true runs))
    [||]

(* ------------------------------------------------------------------ *)
(* Todd's direct scheme (Figure 7)                                      *)
(* ------------------------------------------------------------------ *)

let compile_todd g ~params ~arrays (pi : C.prim_foriter) =
  let index_vars = [ (pi.C.pi_counter, pi.C.pi_first, pi.C.pi_last) ] in
  let ctx = E.new_block_ctx g ~params ~arrays ~index_vars in
  let n = pi.C.pi_last - pi.C.pi_first + 1 in
  let init = const_init ctx pi in
  (* merge control: first output is the initial element, then the n
     computed elements; destination control: feed back all but the last *)
  let mctl = ctl ctx (pi.C.pi_name ^ ".mctl") [ (false, 1); (true, n) ] in
  let dctl = ctl ctx (pi.C.pi_name ^ ".dctl") [ (true, n); (false, 1) ] in
  let ms =
    Graph.add g
      ~label:(pi.C.pi_name ^ ".loop")
      Opcode.Merge_switch
      [| Graph.In_arc; Graph.In_arc; Graph.In_const init; Graph.In_arc |]
  in
  Graph.connect g ~src:mctl ~dst:ms ~port:0;
  Graph.connect g ~src:dctl ~dst:ms ~port:3;
  (* the accumulator reference X[i-1] resolves to the feedback stream *)
  E.seed_window ctx pi.C.pi_acc [ -1 ] (E.Stream (ms, 1));
  let elem = E.compile_expr ctx E.top_env pi.C.pi_elem in
  (match elem with
  | E.Stream _ -> E.connect_rval ctx elem ~dst:ms ~port:1
  | E.Const _ ->
    raise
      (E.Unsupported
         (Printf.sprintf
            "for-iter %s computes a constant element stream; nothing paces \
             the loop"
            pi.C.pi_name)));
  (ctx, ms)

(* ------------------------------------------------------------------ *)
(* The companion scheme (Figure 8)                                      *)
(* ------------------------------------------------------------------ *)

(* Delay a stream by [k] elements within each wave: drop the last [k]
   (T^(n-k) F^k gate), buffer, and prepend [k] copies of [first]
   (F^k T^(n-k) merge, whose constant operand supplies each prepended
   element).  The result pairs position i with the value at position i-k.
   The FIFO between the gate and the merge is required for maximal
   pipelining: the delayed branch holds more elements in flight than its
   cell count, and without elastic capacity the acknowledge chain
   gate <- merge <- consumer closes a constraint cycle spanning k+1
   element indexes that caps the rate (2/5 observed for k = 1 before the
   fix). *)
let delayed ?(k = 1) ctx label ~n ~first rv =
  assert (k >= 1 && k < n);
  let g = ctx.E.g in
  let gate_ctl = ctl ctx (label ^ ".drop") [ (true, n - k); (false, k) ] in
  let gate = Graph.add g ~label:(label ^ ".gate") Opcode.Tgate
      [| Graph.In_arc; E.binding_for rv |]
  in
  Graph.connect g ~src:gate_ctl ~dst:gate ~port:0;
  E.connect_rval ctx rv ~dst:gate ~port:1;
  let buf =
    Graph.add g ~label:(label ^ ".buf") (Opcode.Fifo (k + 1))
      [| Graph.In_arc |]
  in
  Graph.connect g ~src:gate ~dst:buf ~port:0;
  (* the merge consumes the buffered stream [k] indexes late (its first
     [k] firings take the constant): the index offset sits on the arc out
     of the buffer, so phase shift -k is recorded on the buffer node *)
  Hashtbl.replace ctx.E.shifts buf (-k);
  let m_ctl = ctl ctx (label ^ ".mctl") [ (false, k); (true, n - k) ] in
  let m = Graph.add g ~label:(label ^ ".prepend") Opcode.Merge
      [| Graph.In_arc; Graph.In_arc; Graph.In_const first |]
  in
  Graph.connect g ~src:m_ctl ~dst:m ~port:0;
  Graph.connect g ~src:buf ~dst:m ~port:1;
  E.Stream (m, 0)

let compile_companion ?(distance = 2) g ~params ~arrays
    (pi : C.prim_foriter) (an : Recurrence.analysis) =
  if distance < 2 || distance land (distance - 1) <> 0 then
    raise
      (E.Unsupported
         (Printf.sprintf
            "companion distance %d: must be a power of two >= 2" distance));
  let coef, shift =
    match an with
    | Recurrence.Affine { coef; shift } -> (coef, shift)
    | Recurrence.Not_affine why ->
      raise
        (E.Unsupported
           (Printf.sprintf "for-iter %s is not simple: %s" pi.C.pi_name why))
  in
  let index_vars = [ (pi.C.pi_counter, pi.C.pi_first, pi.C.pi_last) ] in
  let ctx = E.new_block_ctx g ~params ~arrays ~index_vars in
  let n = pi.C.pi_last - pi.C.pi_first + 1 in
  let init = const_init ctx pi in
  let one, zero =
    match pi.C.pi_elt with
    | A.Tint -> (Value.Int 1, Value.Int 0)
    | A.Treal | A.Tbool -> (Value.Real 1.0, Value.Real 0.0)
  in
  (* companion pipeline: c1_i = P_i * P'_{i-1},
                         c2_i = P_i * Q'_{i-1} + Q_i *)
  let p_rv = E.compile_expr ctx E.top_env coef in
  let q_rv = E.compile_expr ctx E.top_env shift in
  (match (p_rv, q_rv) with
  | E.Const _, E.Const _ ->
    raise
      (E.Unsupported
         (Printf.sprintf
            "for-iter %s: constant recurrence coefficients leave the loop \
             unpaced by any input"
            pi.C.pi_name))
  | _ -> ());
  let name = pi.C.pi_name in
  (* The coefficient pair stream c^(1) = (P, Q), composed by doubling:
     c^(2k)_i = G(c^(k)_i, c^(k)_{i-k}) — log2(distance) levels of G, the
     paper's associativity tree.  Delays are primed with the identity pair
     (1, 0), which makes the early elements compose only the factors that
     exist: c^(d)_i covers a_i .. a_max(p, i-d+1). *)
  let c1, c2, deff =
    if n = 1 then (p_rv, q_rv, 2)
    else begin
      let binop op rv1 rv2 label =
        match (rv1, rv2) with
        | E.Const a, E.Const b -> E.Const (Opcode.apply_arith op a b)
        | _ ->
          let m = Graph.add g ~label (Opcode.Arith op)
              [| E.binding_for rv1; E.binding_for rv2 |]
          in
          E.connect_rval ctx rv1 ~dst:m ~port:0;
          E.connect_rval ctx rv2 ~dst:m ~port:1;
          E.Stream (m, 0)
      in
      let mul = binop Opcode.Mul and add = binop Opcode.Add in
      (* one G level: (p1,q1) o (p2,q2) at delay k *)
      let rec compose level k (p1, q1) =
        if k >= distance || k >= n then (p1, q1, max 2 k)
        else begin
          let tag suffix = Printf.sprintf "%s.g%d.%s" name level suffix in
          let p2 = delayed ~k ctx (tag "pdel") ~n ~first:one p1 in
          let q2 = delayed ~k ctx (tag "qdel") ~n ~first:zero q1 in
          let p' = mul p1 p2 (tag "c1") in
          let q' = add (mul p1 q2 (tag "c2m")) q1 (tag "c2") in
          compose (level + 1) (2 * k) (p', q')
        end
      in
      compose 1 1 (p_rv, q_rv)
    end
  in
  (* The loop ring, Figure 8 generalized to feedback distance [deff]:
     MULT -> ADD -> ID^(2*deff-3) -> MERG -> MULT — an even ring of
     2*deff cells carrying deff tokens, which sustains the maximal rate.
     The merge issues all deff initial seeds consecutively from its
     constant operand, its destination control feeds everything except
     the last deff elements back, and the block output drops the
     duplicated leading seeds through a gate outside the ring. *)
  let mctl = ctl ctx (name ^ ".mctl") [ (false, deff); (true, n) ] in
  let dctl = ctl ctx (name ^ ".dctl") [ (true, n); (false, deff) ] in
  let ms =
    Graph.add g ~label:(name ^ ".loop") Opcode.Merge_switch
      [| Graph.In_arc; Graph.In_arc; Graph.In_const init; Graph.In_arc |]
  in
  Graph.connect g ~src:mctl ~dst:ms ~port:0;
  Graph.connect g ~src:dctl ~dst:ms ~port:3;
  let mul =
    Graph.add g ~label:(name ^ ".xmul") (Opcode.Arith Opcode.Mul)
      [| E.binding_for c1; Graph.In_arc |]
  in
  E.connect_rval ctx c1 ~dst:mul ~port:0;
  Graph.connect_slot g ~src:ms ~slot:1 ~dst:mul ~port:1;
  let add =
    Graph.add g ~label:(name ^ ".xadd") (Opcode.Arith Opcode.Add)
      [| Graph.In_arc; E.binding_for c2 |]
  in
  Graph.connect g ~src:mul ~dst:add ~port:0;
  E.connect_rval ctx c2 ~dst:add ~port:1;
  let last_pad = ref add in
  for j = 1 to (2 * deff) - 3 do
    let pad =
      Graph.add g ~label:(Printf.sprintf "%s.pad%d" name j) Opcode.Id
        [| Graph.In_arc |]
    in
    Graph.connect g ~src:!last_pad ~dst:pad ~port:0;
    last_pad := pad
  done;
  Graph.connect g ~src:!last_pad ~dst:ms ~port:1;
  (* the merge's firing j consumes the ring emission j - deff (deff seeds
     circulate): index offset -deff closes the ring's phase equalities
     with cycle sum zero — the even-ring condition for the maximal rate *)
  Hashtbl.replace ctx.E.shifts !last_pad (-deff);
  (* output tap: drop the duplicated leading seeds *)
  let octl = ctl ctx (name ^ ".octl") [ (false, deff - 1); (true, n + 1) ] in
  let out_gate =
    Graph.add g ~label:(name ^ ".out") Opcode.Tgate
      [| Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:octl ~dst:out_gate ~port:0;
  Graph.connect g ~src:ms ~dst:out_gate ~port:1;
  Hashtbl.replace ctx.E.shifts out_gate (deff - 1);
  (ctx, out_gate)

(* ------------------------------------------------------------------ *)

let analyze_scheme scheme (pi : C.prim_foriter) =
  match scheme with
  | Todd -> Error "Todd's scheme performs no recurrence analysis"
  | Companion | Auto ->
    Ok (Recurrence.analyze ~acc:pi.C.pi_acc ~elt:pi.C.pi_elt pi.C.pi_elem)

let compile ?(scheme = Auto) ?distance g ~params ~arrays
    (pi : C.prim_foriter) =
  match scheme with
  | Todd -> compile_todd g ~params ~arrays pi
  | Companion ->
    compile_companion ?distance g ~params ~arrays pi
      (Recurrence.analyze ~acc:pi.C.pi_acc ~elt:pi.C.pi_elt pi.C.pi_elem)
  | Auto -> (
    match Recurrence.analyze ~acc:pi.C.pi_acc ~elt:pi.C.pi_elt pi.C.pi_elem with
    | Recurrence.Affine _ as an ->
      compile_companion ?distance g ~params ~arrays pi an
    | Recurrence.Not_affine _ -> compile_todd g ~params ~arrays pi)
