open Dfg
module C = Val_lang.Classify

(** Whole-program compilation (Theorem 4): the blocks of a pipe-structured
    program are compiled individually and connected according to the flow
    dependency graph; the acyclic interconnection is then balanced so the
    complete machine program is fully pipelined. *)

type options = {
  scheme : Foriter_compile.scheme;    (* for-iter mapping (default Auto) *)
  companion_distance : int;
      (* feedback distance of the companion scheme (default 2; powers of
         two; larger distances build the paper's log2-level G tree) *)
  balance : [ `None | `Naive | `Reduced | `Optimal ];  (* default Optimal *)
  expand_macros : bool;
      (* lower Bool_source/Iota/Fifo to pure instruction cells (default
         false: keep the abstract nodes, which simulate faster) *)
  expose : [ `All | `Last ];
      (* create an Output stream per block, or only for the final block *)
  cse : bool;
      (* merge identical cells across blocks before balancing (default
         true); see Dfg.Optimize *)
}

val default_options : options

type compiled = {
  cp_graph : Graph.t;
  cp_outputs : (string * C.array_shape) list;  (* exposed output streams *)
  cp_inputs : (string * C.array_shape) list;   (* array input streams *)
  cp_shifts : (int, int) Hashtbl.t;            (* gate phase shifts *)
  cp_schemes : (string * string) list;         (* block -> mapping used *)
}

val wave_size : C.array_shape -> int
(** Packets per wave of a stream with this shape. *)

val compile :
  ?options:options ->
  ?scalar_inputs:(string * Value.t) list ->
  C.pipe_program ->
  compiled
(** @raise Expr_compile.Unsupported
    @raise Invalid_argument when a scalar input binding is missing *)
