module A = Val_lang.Ast

type analysis =
  | Affine of { coef : A.expr; shift : A.expr }
  | Not_affine of string

(* ------------------------------------------------------------------ *)
(* let inlining                                                         *)
(* ------------------------------------------------------------------ *)

let rec subst map expr =
  match expr with
  | A.Int_lit _ | A.Real_lit _ | A.Bool_lit _ -> expr
  | A.Var name -> (
    match List.assoc_opt name map with Some e -> e | None -> expr)
  | A.Binop (op, a, b) -> A.Binop (op, subst map a, subst map b)
  | A.Unop (op, a) -> A.Unop (op, subst map a)
  | A.Select _ -> expr
  | A.Let (defs, body) ->
    (* inner definitions shadow: remove them from the substitution as we
       pass each one *)
    let map, defs =
      List.fold_left
        (fun (map, defs) d ->
          let d = { d with A.def_rhs = subst map d.A.def_rhs } in
          (List.remove_assoc d.A.def_name map, d :: defs))
        (map, []) defs
    in
    A.Let (List.rev defs, subst map body)
  | A.If (c, t, e) -> A.If (subst map c, subst map t, subst map e)

let rec inline_lets expr =
  match expr with
  | A.Int_lit _ | A.Real_lit _ | A.Bool_lit _ | A.Var _ | A.Select _ -> expr
  | A.Binop (op, a, b) -> A.Binop (op, inline_lets a, inline_lets b)
  | A.Unop (op, a) -> A.Unop (op, inline_lets a)
  | A.If (c, t, e) -> A.If (inline_lets c, inline_lets t, inline_lets e)
  | A.Let (defs, body) ->
    let map =
      List.fold_left
        (fun map d ->
          (d.A.def_name, subst map (inline_lets d.A.def_rhs)) :: map)
        [] defs
    in
    subst map (inline_lets body)

let contains_acc ~acc expr =
  let found = ref false in
  let rec go = function
    | A.Int_lit _ | A.Real_lit _ | A.Bool_lit _ | A.Var _ -> ()
    | A.Binop (_, a, b) ->
      go a;
      go b
    | A.Unop (_, a) -> go a
    | A.Select (name, _) -> if name = acc then found := true
    | A.Let (defs, body) ->
      List.iter (fun d -> go d.A.def_rhs) defs;
      go body
    | A.If (c, t, e) ->
      go c;
      go t;
      go e
  in
  go expr;
  !found

(* ------------------------------------------------------------------ *)
(* Simplifying expression constructors                                  *)
(* ------------------------------------------------------------------ *)

let is_zero = function
  | A.Int_lit 0 -> true
  | A.Real_lit f -> f = 0.0
  | _ -> false

let is_one = function
  | A.Int_lit 1 -> true
  | A.Real_lit f -> f = 1.0
  | _ -> false

let eadd a b =
  if is_zero a then b else if is_zero b then a else A.Binop (A.Add, a, b)

let esub a b = if is_zero b then a else A.Binop (A.Sub, a, b)

let emul a b =
  if is_one a then b
  else if is_one b then a
  else if is_zero a then a
  else if is_zero b then b
  else A.Binop (A.Mul, a, b)

let ediv a b = if is_one b then a else A.Binop (A.Div, a, b)

let eneg = function
  | A.Int_lit i -> A.Int_lit (-i)
  | A.Real_lit f -> A.Real_lit (-.f)
  | e -> A.Unop (A.Neg, e)

(* ------------------------------------------------------------------ *)
(* Affine decomposition                                                 *)
(* ------------------------------------------------------------------ *)

exception Refused of string

let analyze ~acc ~elt expr =
  let zero =
    match elt with A.Tint -> A.Int_lit 0 | _ -> A.Real_lit 0.0
  in
  let one = match elt with A.Tint -> A.Int_lit 1 | _ -> A.Real_lit 1.0 in
  let refuse fmt = Printf.ksprintf (fun s -> raise (Refused s)) fmt in
  let add_coef a b =
    match (a, b) with
    | None, c | c, None -> c
    | Some x, Some y -> Some (eadd x y)
  in
  let sub_coef a b =
    match (a, b) with
    | c, None -> c
    | None, Some y -> Some (eneg y)
    | Some x, Some y -> Some (esub x y)
  in
  (* returns (coefficient of x, constant part); coefficient None = 0 *)
  let rec go expr =
    if not (contains_acc ~acc expr) then (None, expr)
    else
      match expr with
      | A.Select (name, indices) -> (
        (* [contains_acc] was true, so this must be the accumulator *)
        assert (name = acc);
        match indices with
        | [ A.Ix_var (_, -1) ] -> (Some one, zero)
        | _ -> refuse "accumulator referenced other than as %s[i-1]" acc)
      | A.Binop (A.Add, a, b) ->
        let ca, qa = go a and cb, qb = go b in
        (add_coef ca cb, eadd qa qb)
      | A.Binop (A.Sub, a, b) ->
        let ca, qa = go a and cb, qb = go b in
        (sub_coef ca cb, esub qa qb)
      | A.Binop (A.Mul, a, b) -> (
        let ca, qa = go a and cb, qb = go b in
        match (ca, cb) with
        | Some _, Some _ ->
          refuse "recurrence is quadratic in %s[i-1]" acc
        | Some c, None -> (Some (emul c qb), emul qa qb)
        | None, Some c -> (Some (emul qa c), emul qa qb)
        | None, None -> (None, emul qa qb))
      | A.Binop (A.Div, a, b) ->
        if contains_acc ~acc b then
          refuse "division by an expression containing %s[i-1]" acc
        else
          let ca, qa = go a in
          (Option.map (fun c -> ediv c b) ca, ediv qa b)
      | A.Unop (A.Neg, a) ->
        let c, q = go a in
        (Option.map eneg c, eneg q)
      | A.Binop (op, _, _) ->
        refuse "operator %s over %s[i-1] has no known companion function"
          (A.binop_name op) acc
      | A.Unop (A.Fn f, _) ->
        refuse "%s over %s[i-1] has no known companion function"
          (A.math_fn_name f) acc
      | A.Unop (A.Not, _) | A.If _ ->
        refuse
          "conditional or boolean dependence on %s[i-1]: no companion \
           function"
          acc
      | A.Let _ -> assert false (* inlined below *)
      | A.Int_lit _ | A.Real_lit _ | A.Bool_lit _ | A.Var _ -> (None, expr)
  in
  match go (inline_lets expr) with
  | None, q ->
    (* no actual recurrence: x_i independent of x_{i-1} *)
    Affine { coef = zero; shift = q }
  | Some c, q -> Affine { coef = c; shift = q }
  | exception Refused why -> Not_affine why

let companion_apply (p1, q1) (p2, q2) = (p1 *. p2, (p1 *. q2) +. q1)
