open Dfg
module A = Val_lang.Ast
module Eval = Val_lang.Eval

exception Unsupported of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type rval = Const of Value.t | Stream of int * int

type array_src = { src_node : int; src_ranges : (int * int) list }

type block_ctx = {
  g : Graph.t;
  shifts : (int, int) Hashtbl.t;
  windows : (string * int list * bool array option, rval) Hashtbl.t;
  iotas : (string, rval) Hashtbl.t;
  params : (string * Value.t) list;
  arrays : (string * array_src) list;
  index_vars : (string * int * int) list;
  points : (string * int) list array Lazy.t;
      (* index assignment per flat output position, row-major *)
}

(* Conditional arms come in two flavours (Figures 5 and 6):
   - [Static]: the condition depends only on index variables and params,
     so each arm's index set is a compile-time [mask] over the flat output
     space; operands entering the arm pass a T-gate driven by the mask
     pattern, and the recombining merge is driven by the same pattern —
     the paper's boolean control sequences.  [mask] is stored already
     intersected with every enclosing static mask.
   - [Dynamic]: a data-dependent condition; operands are routed through a
     [Switch] shared by the two sibling arms. *)
type layer =
  | Static of { mask : bool array; gates : (int * int, int) Hashtbl.t }
  | Dynamic of {
      ctl : rval;
      polarity : bool;
      switches : (int * int, int) Hashtbl.t;
    }

type env = {
  bindings : (string * (rval * int)) list;
  statics : (string * A.expr) list;  (* index-only definitions, inlined *)
  layers : layer list;               (* innermost first *)
}

let top_env = { bindings = []; statics = []; layers = [] }

let bind env name rv =
  { env with bindings = (name, (rv, List.length env.layers)) :: env.bindings }

let flat_size index_vars =
  List.fold_left (fun acc (_, lo, hi) -> acc * (hi - lo + 1)) 1 index_vars

let enumerate_points index_vars =
  let total = flat_size index_vars in
  let points = Array.make total [] in
  for k = 0 to total - 1 do
    let rec coords k = function
      | [] -> []
      | (v, lo, hi) :: rest ->
        let inner = flat_size rest in
        ((v, lo + (k / inner mod (hi - lo + 1))) :: coords (k mod inner) rest)
    in
    points.(k) <- coords k index_vars
  done;
  points

let new_block_ctx g ~params ~arrays ~index_vars =
  {
    g;
    shifts = Hashtbl.create 16;
    windows = Hashtbl.create 16;
    iotas = Hashtbl.create 4;
    params;
    arrays;
    index_vars;
    points = lazy (enumerate_points index_vars);
  }

let binding_for = function
  | Const v -> Graph.In_const v
  | Stream _ -> Graph.In_arc

let connect_rval ctx rv ~dst ~port =
  match rv with
  | Const _ -> ()
  | Stream (src, slot) -> Graph.connect_slot ctx.g ~src ~slot ~dst ~port

let add_node ctx ?label op rvs =
  let id = Graph.add ctx.g ?label op (Array.map binding_for rvs) in
  Array.iteri (fun port rv -> connect_rval ctx rv ~dst:id ~port) rvs;
  id

(* ------------------------------------------------------------------ *)
(* Masks and control patterns                                           *)
(* ------------------------------------------------------------------ *)

(* Run-length pattern of [mask] over the positions selected by [within]
   (all positions when [within] is [None]). *)
let pattern_within ?within mask =
  let runs = ref [] in
  Array.iteri
    (fun p m ->
      let visible =
        match within with None -> true | Some w -> w.(p)
      in
      if visible then
        match !runs with
        | (v, c) :: rest when v = m -> runs := (v, c + 1) :: rest
        | _ -> runs := (m, 1) :: !runs)
    mask;
  Ctlseq.make ~cyclic:true (List.rev !runs)

let first_true_within ?within mask =
  let k = ref 0 and found = ref (-1) in
  Array.iteri
    (fun p m ->
      let visible =
        match within with None -> true | Some w -> w.(p)
      in
      if visible then begin
        if m && !found < 0 then found := !k;
        incr k
      end)
    mask;
  max 0 !found

(* Gate a stream down to the positions of [mask] (relative to [within]). *)
let mask_gate ctx ~label ?within ~mask rv =
  let pattern = pattern_within ?within mask in
  let ctl = Graph.add ctx.g ~label:(label ^ ".ctl") (Opcode.Bool_source pattern) [||] in
  let gate = add_node ctx ~label Opcode.Tgate [| Stream (ctl, 0); rv |] in
  Hashtbl.replace ctx.shifts gate (first_true_within ?within mask);
  Stream (gate, 0)

(* Innermost static mask visible in [env] (masks are pre-intersected). *)
let enclosing_mask env =
  let rec find = function
    | [] -> None
    | Static { mask; _ } :: _ -> Some mask
    | Dynamic _ :: rest -> find rest
  in
  find env.layers

let has_dynamic env =
  List.exists (function Dynamic _ -> true | Static _ -> false) env.layers

(* Bring a stream bound at layer-depth [depth] into the current arm. *)
let adapt ctx env (rv, depth) =
  match rv with
  | Const _ -> rv
  | Stream _ ->
    let outer_first = List.rev env.layers in
    (* track the enclosing mask as we pass static layers *)
    let rec apply k within layers rv =
      match layers with
      | [] -> rv
      | layer :: rest ->
        let next_within =
          match layer with
          | Static { mask; _ } -> Some mask
          | Dynamic _ -> within
        in
        if k < depth then apply (k + 1) next_within rest rv
        else begin
          let key =
            match rv with Stream (n, s) -> (n, s) | Const _ -> assert false
          in
          let rv =
            match layer with
            | Static { mask; gates } ->
              let gate =
                match Hashtbl.find_opt gates key with
                | Some g -> Stream (g, 0)
                | None ->
                  let g = mask_gate ctx ~label:"arm" ?within ~mask rv in
                  (match g with
                  | Stream (n, _) -> Hashtbl.add gates key n
                  | Const _ -> ());
                  g
              in
              gate
            | Dynamic { ctl; polarity; switches } ->
              let sw =
                match Hashtbl.find_opt switches key with
                | Some sw -> sw
                | None ->
                  let sw =
                    add_node ctx ~label:"SWITCH" Opcode.Switch [| ctl; rv |]
                  in
                  Hashtbl.add switches key sw;
                  sw
              in
              Stream (sw, if polarity then 0 else 1)
          in
          apply (k + 1) next_within rest rv
        end
    in
    apply 0 None outer_first rv

let adapt_dynamics_only ctx env rv =
  (* apply only the Dynamic layers (the stream already accounts for every
     static mask) *)
  let outer_first = List.rev env.layers in
  List.fold_left
    (fun rv layer ->
      match (layer, rv) with
      | Static _, _ | _, Const _ -> rv
      | Dynamic { ctl; polarity; switches }, Stream (n, s) ->
        let key = (n, s) in
        let sw =
          match Hashtbl.find_opt switches key with
          | Some sw -> sw
          | None ->
            let sw = add_node ctx ~label:"SWITCH" Opcode.Switch [| ctl; rv |] in
            Hashtbl.add switches key sw;
            sw
        in
        Stream (sw, if polarity then 0 else 1))
    rv outer_first

(* ------------------------------------------------------------------ *)
(* Static condition evaluation                                          *)
(* ------------------------------------------------------------------ *)

let eval_value_of = function
  | Value.Int i -> Eval.VInt i
  | Value.Real f -> Eval.VReal f
  | Value.Bool b -> Eval.VBool b

(* Is the (already let-inlined and static-substituted) expression a pure
   function of index variables and params? *)
let rec index_only ctx expr =
  match expr with
  | A.Int_lit _ | A.Real_lit _ | A.Bool_lit _ -> true
  | A.Var name ->
    List.mem_assoc name ctx.params
    || List.exists (fun (v, _, _) -> v = name) ctx.index_vars
  | A.Binop (_, a, b) -> index_only ctx a && index_only ctx b
  | A.Unop (_, a) -> index_only ctx a
  | A.Select _ -> false
  | A.Let (defs, body) ->
    List.for_all (fun d -> index_only ctx d.A.def_rhs) defs
    && index_only ctx body
  | A.If (c, t, e) ->
    index_only ctx c && index_only ctx t && index_only ctx e

let static_mask ctx env cond =
  if has_dynamic env then None
  else
    let cond =
      Recurrence.subst env.statics (Recurrence.inline_lets cond)
    in
    if not (index_only ctx cond) then None
    else begin
      let base_env =
        List.map (fun (n, v) -> (n, eval_value_of v)) ctx.params
      in
      let points = Lazy.force ctx.points in
      try
        Some
          (Array.map
             (fun point ->
               let env =
                 Eval.env_of_bindings
                   (List.map (fun (v, i) -> (v, Eval.VInt i)) point
                   @ base_env)
               in
               match Eval.eval_expr env cond with
               | Eval.VBool b -> b
               | _ -> raise Exit)
             points)
      with Eval.Error _ | Exit -> None
    end

(* Record index-only let definitions so conditions over them still
   compile to static control sequences. *)
let record_static ctx env name rhs =
  let rhs = Recurrence.subst env.statics (Recurrence.inline_lets rhs) in
  if index_only ctx rhs then { env with statics = (name, rhs) :: env.statics }
  else env

(* ------------------------------------------------------------------ *)
(* Index variables: Iota sources                                        *)
(* ------------------------------------------------------------------ *)

let get_iota ctx env name =
  let rv =
    match Hashtbl.find_opt ctx.iotas name with
    | Some rv -> rv
    | None ->
      let rec spec = function
        | [] -> fail "unknown index variable %s" name
        | (v, lo, hi) :: rest ->
          if v = name then
            let rep = flat_size rest in
            (lo, hi, rep)
          else spec rest
      in
      let lo, hi, rep = spec ctx.index_vars in
      let node =
        Graph.add ctx.g ~label:("iota." ^ name)
          (Opcode.Iota { lo; hi; rep })
          [||]
      in
      let rv = Stream (node, 0) in
      Hashtbl.add ctx.iotas name rv;
      rv
  in
  adapt ctx env (rv, 0)

(* ------------------------------------------------------------------ *)
(* Array selection windows (Figures 4 and 6)                            *)
(* ------------------------------------------------------------------ *)

let flat_src_position ~src_ranges coords =
  let rec go acc = function
    | [], [] -> Some acc
    | c :: cs, (lo, hi) :: rs ->
      if c < lo || c > hi then None
      else
        let inner = List.fold_left (fun a (l, h) -> a * (h - l + 1)) 1 rs in
        go (acc + ((c - lo) * inner)) (cs, rs)
    | _ -> assert false
  in
  go 0 (coords, src_ranges)

let get_window ctx env name offsets =
  let enc = enclosing_mask env in
  let adapt_rest rv = adapt_dynamics_only ctx env rv in
  match Hashtbl.find_opt ctx.windows (name, offsets, enc) with
  | Some rv -> adapt_rest rv
  | None -> (
    (* a stream seeded (or built) for the full range can be narrowed by
       the ordinary layer adaptation *)
    match Hashtbl.find_opt ctx.windows (name, offsets, None) with
    | Some rv when enc <> None -> adapt ctx env (rv, 0)
    | _ ->
      let src =
        match List.assoc_opt name ctx.arrays with
        | Some src -> src
        | None -> fail "selection from unknown array %s" name
      in
      if List.length offsets <> List.length src.src_ranges then
        fail "array %s selected with %d subscripts but has %d dimension(s)"
          name (List.length offsets)
          (List.length src.src_ranges);
      if List.length offsets <> List.length ctx.index_vars then
        fail "array %s must be subscripted by every index variable" name;
      let points = Lazy.force ctx.points in
      let src_size =
        List.fold_left (fun a (l, h) -> a * (h - l + 1)) 1 src.src_ranges
      in
      let src_mask = Array.make src_size false in
      Array.iteri
        (fun k point ->
          let selected =
            match enc with None -> true | Some e -> e.(k)
          in
          if selected then begin
            let coords =
              List.map2 (fun (_, i) off -> i + off) point offsets
            in
            match flat_src_position ~src_ranges:src.src_ranges coords with
            | Some pos -> src_mask.(pos) <- true
            | None ->
              fail
                "%s[%s] reads position (%s) outside the producer's range"
                name
                (String.concat ", "
                   (List.map2
                      (fun (v, _) off ->
                        if off = 0 then v
                        else Printf.sprintf "%s%+d" v off)
                      point offsets))
                (String.concat ", " (List.map string_of_int coords))
          end)
        points;
      let rv =
        if Array.for_all Fun.id src_mask then Stream (src.src_node, 0)
        else
          mask_gate ctx
            ~label:
              (Printf.sprintf "win.%s%s" name
                 (String.concat ""
                    (List.map (Printf.sprintf "[%+d]") offsets)))
            ~mask:src_mask
            (Stream (src.src_node, 0))
      in
      Hashtbl.add ctx.windows (name, offsets, enc) rv;
      adapt_rest rv)

let seed_window ctx name offsets rv =
  Hashtbl.replace ctx.windows (name, offsets, None) rv

(* ------------------------------------------------------------------ *)
(* Constant folding                                                     *)
(* ------------------------------------------------------------------ *)

let arith_op = function
  | A.Add -> Opcode.Add
  | A.Sub -> Opcode.Sub
  | A.Mul -> Opcode.Mul
  | A.Div -> Opcode.Div
  | A.Min -> Opcode.Min
  | A.Max -> Opcode.Max
  | _ -> assert false

let cmp_op = function
  | A.Lt -> Opcode.Lt
  | A.Le -> Opcode.Le
  | A.Gt -> Opcode.Gt
  | A.Ge -> Opcode.Ge
  | A.Eq -> Opcode.Eq
  | A.Ne -> Opcode.Ne
  | _ -> assert false

let apply_binop op a b =
  if A.is_arith op then Opcode.apply_arith (arith_op op) a b
  else if A.is_compare op then Opcode.apply_cmp (cmp_op op) a b
  else
    Opcode.apply_logic
      (match op with
      | A.And -> Opcode.And
      | A.Or -> Opcode.Or
      | _ -> assert false)
      a b

let opcode_of_binop op =
  if A.is_arith op then Opcode.Arith (arith_op op)
  else if A.is_compare op then Opcode.Compare (cmp_op op)
  else
    Opcode.Logic
      (match op with
      | A.And -> Opcode.And
      | A.Or -> Opcode.Or
      | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Expression compilation                                               *)
(* ------------------------------------------------------------------ *)

let all_false ?within mask =
  let result = ref true in
  Array.iteri
    (fun p m ->
      let visible = match within with None -> true | Some w -> w.(p) in
      if visible && m then result := false)
    mask;
  !result

let rec compile_expr ctx env expr =
  match expr with
  | A.Int_lit i -> Const (Value.Int i)
  | A.Real_lit f -> Const (Value.Real f)
  | A.Bool_lit b -> Const (Value.Bool b)
  | A.Var name -> (
    match List.assoc_opt name env.bindings with
    | Some bound -> adapt ctx env bound
    | None -> (
      match List.assoc_opt name ctx.params with
      | Some v -> Const v
      | None ->
        if List.exists (fun (v, _, _) -> v = name) ctx.index_vars then
          get_iota ctx env name
        else fail "unbound identifier %s" name))
  | A.Binop (op, a, b) -> (
    let ra = compile_expr ctx env a in
    let rb = compile_expr ctx env b in
    match (ra, rb) with
    | Const va, Const vb -> (
      try Const (apply_binop op va vb)
      with Value.Type_clash msg -> fail "constant folding: %s" msg)
    | _ ->
      let n =
        add_node ctx
          ~label:(Opcode.name (opcode_of_binop op))
          (opcode_of_binop op) [| ra; rb |]
      in
      Stream (n, 0))
  | A.Unop (A.Neg, a) -> (
    match compile_expr ctx env a with
    | Const (Value.Int i) -> Const (Value.Int (-i))
    | Const (Value.Real f) -> Const (Value.Real (-.f))
    | Const (Value.Bool _) -> fail "negation of a boolean"
    | Stream _ as rv -> Stream (add_node ctx Opcode.Neg [| rv |], 0))
  | A.Unop (A.Not, a) -> (
    match compile_expr ctx env a with
    | Const v -> Const (Value.Bool (not (Value.to_bool v)))
    | Stream _ as rv -> Stream (add_node ctx Opcode.Not [| rv |], 0))
  | A.Unop (A.Fn f, a) -> (
    let m =
      match f with
      | A.Sqrt -> Opcode.Sqrt
      | A.Abs -> Opcode.Abs
      | A.Exp -> Opcode.Exp
      | A.Ln -> Opcode.Ln
      | A.Sin -> Opcode.Sin
      | A.Cos -> Opcode.Cos
    in
    match compile_expr ctx env a with
    | Const v -> Const (Opcode.apply_math m v)
    | Stream _ as rv -> Stream (add_node ctx (Opcode.Math m) [| rv |], 0))
  | A.Select (name, indices) ->
    let offsets = offsets_of ctx name indices in
    get_window ctx env name offsets
  | A.Let (defs, body) ->
    let env =
      List.fold_left
        (fun env { A.def_name; def_rhs; _ } ->
          let env' =
            bind env def_name (compile_expr ctx env def_rhs)
          in
          record_static ctx env' def_name def_rhs)
        env defs
    in
    compile_expr ctx env body
  | A.If (c, t, e) -> (
    (* decide staticness before compiling the condition, so no dead
       condition subgraph is ever built *)
    match static_mask ctx env c with
    | Some cmask -> compile_static_if ctx env ~cmask t e
    | None -> (
      match compile_expr ctx env c with
      | Const v -> compile_expr ctx env (if Value.to_bool v then t else e)
      | Stream _ as ctl -> compile_dynamic_if ctx env ~ctl t e))

and compile_static_if ctx env ~cmask t e =
  let enc = enclosing_mask env in
  let within p = match enc with None -> true | Some w -> w.(p) in
  let tmask = Array.mapi (fun p m -> m && within p) cmask in
  let emask = Array.mapi (fun p m -> (not m) && within p) cmask in
  if all_false ?within:enc tmask then compile_expr ctx env e
  else if all_false ?within:enc emask then compile_expr ctx env t
  else begin
    let t_layer = Static { mask = tmask; gates = Hashtbl.create 8 } in
    let e_layer = Static { mask = emask; gates = Hashtbl.create 8 } in
    let t_rv = compile_expr ctx { env with layers = t_layer :: env.layers } t in
    let e_rv = compile_expr ctx { env with layers = e_layer :: env.layers } e in
    (* An arm whose elements are produced (in source order) earlier than
       the merge consumes them (in output order) piles tokens up and can
       deadlock the shared input stream; size an elastic buffer by the
       exact counting bound. *)
    let b_then, b_else = static_arm_buffering ctx ~tmask ~emask t e in
    let buffered rv b =
      match rv with
      | Const _ -> rv
      | Stream _ when b <= 0 -> rv
      | Stream _ ->
        let fifo =
          Graph.add ctx.g ~label:"arm.buf" (Opcode.Fifo (b + 1))
            [| Graph.In_arc |]
        in
        connect_rval ctx rv ~dst:fifo ~port:0;
        Stream (fifo, 0)
    in
    let t_rv = buffered t_rv b_then in
    let e_rv = buffered e_rv b_else in
    let pattern = pattern_within ?within:enc cmask in
    let mctl =
      Graph.add ctx.g ~label:"if.ctl" (Opcode.Bool_source pattern) [||]
    in
    let merge =
      add_node ctx ~label:"MERG" Opcode.Merge
        [| Stream (mctl, 0); t_rv; e_rv |]
    in
    Stream (merge, 0)
  end

(* For each arm of a static conditional: the maximum number of arm
   elements whose own source reads have arrived while their merge slot is
   still blocked by earlier outputs' source reads — the exact elastic
   capacity the arm stream needs so the shared producers never stall.
   Computed per source array and maximized. *)
and static_arm_buffering ctx ~tmask ~emask t_expr e_expr =
  let points = Lazy.force ctx.points in
  let refs expr =
    (* direct array reads of the arm, with their source spaces *)
    List.filter_map
      (fun (name, offsets) ->
        match List.assoc_opt name ctx.arrays with
        | Some src when List.length offsets = List.length ctx.index_vars ->
          Some (name, offsets, src.src_ranges)
        | _ -> None)
      (Val_lang.Classify.array_references expr)
  in
  let t_refs = refs t_expr and e_refs = refs e_expr in
  let arrays =
    List.sort_uniq compare
      (List.map (fun (n, _, _) -> n) (t_refs @ e_refs))
  in
  let bound_for arm_mask arm_refs =
    List.fold_left
      (fun acc array ->
        (* per output position (in enc order): the latest slot of [array]
           its arm reads, or none *)
        let slot_of refs_for_arm p =
          List.fold_left
            (fun acc (n, offsets, ranges) ->
              if n <> array then acc
              else
                let coords =
                  List.map2 (fun (_, i) off -> i + off) points.(p) offsets
                in
                match flat_src_position ~src_ranges:ranges coords with
                | Some s -> max acc s
                | None -> acc)
            min_int refs_for_arm
        in
        (* walk outputs in order, tracking need = running max of every
           arm's reads, and the produced/consumed imbalance of THIS arm *)
        let own = ref [] (* (s_k, need_k) for this arm's elements *) in
        let need = ref min_int in
        Array.iteri
          (fun p _ ->
            let in_t = tmask.(p) and in_e = emask.(p) in
            if in_t || in_e then begin
              let s =
                slot_of (if in_t then t_refs else e_refs) p
              in
              if s > min_int then need := max !need s;
              let mine =
                (in_t && arm_mask == tmask) || (in_e && arm_mask == emask)
              in
              if mine then begin
                let s_own = slot_of arm_refs p in
                if s_own > min_int then own := (s_own, !need) :: !own
              end
            end)
          points;
        let own = List.rev !own in
        (* imbalance at each production instant *)
        let b =
          List.fold_left
            (fun best (s_k, _) ->
              let produced =
                List.length (List.filter (fun (s, _) -> s <= s_k) own)
              in
              let consumed =
                List.length (List.filter (fun (_, nd) -> nd <= s_k) own)
              in
              max best (produced - consumed))
            0 own
        in
        max acc b)
      0 arrays
  in
  (bound_for tmask t_refs, bound_for emask e_refs)

and compile_dynamic_if ctx env ~ctl t e =
  let switches = Hashtbl.create 8 in
  let arm polarity = Dynamic { ctl; polarity; switches } in
  let t_rv = compile_expr ctx { env with layers = arm true :: env.layers } t in
  let e_rv = compile_expr ctx { env with layers = arm false :: env.layers } e in
  let merge = add_node ctx ~label:"MERG" Opcode.Merge [| ctl; t_rv; e_rv |] in
  Stream (merge, 0)

and offsets_of ctx name indices =
  let vars = List.map (fun (v, _, _) -> v) ctx.index_vars in
  if List.length indices <> List.length vars then
    fail "array %s must use all %d index variable(s)" name (List.length vars);
  List.map2
    (fun ix var ->
      match ix with
      | A.Ix_var (v, off) when v = var -> off
      | A.Ix_var (v, _) ->
        fail "subscript of %s uses %s where %s is required" name v var
      | A.Ix_const _ ->
        fail "constant subscript on %s is outside the primitive class" name)
    indices vars

let materialize ctx rv =
  match rv with
  | Stream (n, 0) -> n
  | Stream _ -> add_node ctx ~label:"ID" Opcode.Id [| rv |]
  | Const v -> (
    (* A constant block body still produces one packet per index point:
       pace the constant off any input stream of matching dimensionality
       (an always-true comparison of the stream with itself gates the
       constant operand through). *)
    let dims = List.length ctx.index_vars in
    match
      List.find_opt
        (fun (_, src) -> List.length src.src_ranges = dims)
        ctx.arrays
    with
    | None ->
      fail
        "expression is a compile-time constant stream and no array input \
         of matching dimensionality can pace it"
    | Some (name, _) ->
      let offsets = List.map (fun _ -> 0) ctx.index_vars in
      let pace = get_window ctx top_env name offsets in
      let always =
        add_node ctx ~label:"pace.true" (Opcode.Compare Opcode.Eq)
          [| pace; pace |]
      in
      add_node ctx ~label:"pace.const" Opcode.Tgate
        [| Stream (always, 0); Const v |])

let add_sinks_to_open_slots g =
  let missing = ref [] in
  Graph.iter_nodes g (fun n ->
      Array.iteri
        (fun slot dests ->
          if dests = [] then missing := (n.Graph.id, slot) :: !missing)
        n.Graph.dests);
  List.iter
    (fun (src, slot) ->
      let sink = Graph.add g ~label:"discard" Opcode.Sink [| Graph.In_arc |] in
      Graph.connect_slot g ~src ~slot ~dst:sink ~port:0)
    !missing
