module C = Val_lang.Classify

(** Pipelined mapping of primitive forall expressions (Theorem 2,
    Figure 6): the definition part and the accumulation part are cascaded
    as one acyclic instruction graph producing the constructed array as a
    stream, one element per index point in row-major order. *)

val compile :
  Dfg.Graph.t ->
  params:(string * Dfg.Value.t) list ->
  arrays:(string * Expr_compile.array_src) list ->
  C.prim_forall ->
  Expr_compile.block_ctx * int
(** Returns the block's compile context (for its phase-shift table) and
    the node producing the constructed array's stream.
    @raise Expr_compile.Unsupported *)
