lib/machine/machine_engine.mli: Arch Dfg Graph Value
