lib/machine/machine_engine.ml: Arch Array Ctlseq Df_util Dfg Graph List Opcode Option Printf Queue String Value
