lib/machine/arch.mli:
