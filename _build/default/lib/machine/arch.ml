type array_policy = Streamed | Stored

type t = {
  n_pe : int;
  n_fu : int;
  n_am : int;
  fu_latency : int;
  am_latency : int;
  rn_latency : int;
  array_policy : array_policy;
}

let default =
  {
    n_pe = 8;
    n_fu = 4;
    n_am = 2;
    fu_latency = 4;
    am_latency = 6;
    rn_latency = 2;
    array_policy = Streamed;
  }

let describe t =
  Printf.sprintf "%d PE, %d FU(lat %d), %d AM(lat %d), RN lat %d, arrays %s"
    t.n_pe t.n_fu t.fu_latency t.n_am t.am_latency t.rn_latency
    (match t.array_policy with Streamed -> "streamed" | Stored -> "stored")
