(** Machine organization parameters (the paper's Figure 1: processing
    elements, function units, array memories, routing networks). *)

type array_policy =
  | Streamed
      (** the paper's proposal: arrays flow as result-packet sequences
          from producer block to consumer block through the routing
          network; array memories hold nothing transient *)
  | Stored
      (** conventional baseline: every array element a block produces is
          written to an array memory and read back by each consumer *)

type t = {
  n_pe : int;          (** processing elements (instruction-cell hosts) *)
  n_fu : int;          (** shared function units *)
  n_am : int;          (** array memory units *)
  fu_latency : int;    (** pipelined FU latency (initiation 1/cycle) *)
  am_latency : int;    (** array-memory access latency *)
  rn_latency : int;    (** routing-network transit latency *)
  array_policy : array_policy;
}

val default : t
(** 8 PEs, 4 FUs, 2 AMs, latencies 4/6/2, [Streamed]. *)

val describe : t -> string
