open Dfg
module Mincost_flow = Mcf.Mincost_flow

exception Cyclic

let default_weight = Analysis.node_delay

let no_skip _ _ = false

(* All arcs as (src, slot, dst, port, weight of src under [weight]). *)
let arcs_of ?(weight = default_weight) ?(skip = no_skip) g =
  ignore (skip : int -> int -> bool);
  Graph.fold_nodes g ~init:[] ~f:(fun acc n ->
      let w = weight n in
      let _, acc =
        Array.fold_left
          (fun (slot, acc) dests ->
            ( slot + 1,
              List.fold_left
                (fun acc { Graph.ep_node; ep_port } ->
                  if skip n.Graph.id ep_node then acc
                  else (n.Graph.id, slot, ep_node, ep_port, w) :: acc)
                acc dests ))
          (0, acc) n.Graph.dests
      in
      acc)
  |> List.rev

(* Topological order over a filtered arc list; None when a cycle remains. *)
let topo_of_arcs n arcs =
  let indeg = Array.make n 0 and succ = Array.make n [] in
  List.iter
    (fun (u, _, v, _, w) ->
      indeg.(v) <- indeg.(v) + 1;
      succ.(u) <- (v, w) :: succ.(u))
    arcs;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = ref [] and emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr emitted;
    List.iter
      (fun (s, _) ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      succ.(v)
  done;
  if !emitted = n then Some (List.rev !order, succ) else None

let naive_levels_arcs n arcs =
  match topo_of_arcs n arcs with
  | None -> raise Cyclic
  | Some (order, succ) ->
    let levels = Array.make n 0 in
    List.iter
      (fun u ->
        List.iter
          (fun (v, w) -> levels.(v) <- max levels.(v) (levels.(u) + w))
          succ.(u))
      order;
    levels

let naive_levels ?weight g =
  naive_levels_arcs (Graph.node_count g) (arcs_of ?weight g)

let is_feasible ?weight g levels =
  List.for_all
    (fun (u, _, v, _, w) -> levels.(v) - levels.(u) >= w)
    (arcs_of ?weight g)

let buffer_cost ?weight g levels =
  List.fold_left
    (fun acc (u, _, v, _, w) -> acc + (levels.(v) - levels.(u) - w))
    0 (arcs_of ?weight g)

let reduce_levels_arcs n arcs levels =
  let levels = Array.copy levels in
  let in_arcs = Array.make n [] and out_arcs = Array.make n [] in
  List.iter
    (fun (u, _, v, _, w) ->
      in_arcs.(v) <- (u, w) :: in_arcs.(v);
      out_arcs.(u) <- (v, w) :: out_arcs.(u))
    arcs;
  let sweep () =
    let moved = ref false in
    for v = 0 to n - 1 do
      let coeff = List.length in_arcs.(v) - List.length out_arcs.(v) in
      if coeff <> 0 then begin
        let lb =
          List.fold_left
            (fun acc (u, w) -> max acc (levels.(u) + w))
            min_int in_arcs.(v)
        and ub =
          List.fold_left
            (fun acc (s, w) -> min acc (levels.(s) - w))
            max_int out_arcs.(v)
        in
        let target =
          if coeff > 0 then lb (* shrinking level removes inbound slack *)
          else ub
        in
        if target > min_int && target < max_int && target <> levels.(v)
        then begin
          (* only strictly improving moves, to guarantee termination *)
          let delta = coeff * (target - levels.(v)) in
          if delta < 0 then begin
            levels.(v) <- target;
            moved := true
          end
        end
      end
    done;
    !moved
  in
  let budget = ref (10 * (n + 1)) in
  while sweep () && !budget > 0 do
    decr budget
  done;
  levels

let reduce_levels ?weight g levels =
  reduce_levels_arcs (Graph.node_count g) (arcs_of ?weight g) levels

let big_capacity_arcs n arcs = (4 * List.length arcs) + n + 16

(* Optimal balancing as the LP dual of min-cost flow; see DESIGN.md and
   the .mli.  The primal is  min Σ c_v l_v  s.t.  l_v - l_u >= w_e  with
   c_v = indeg - outdeg; the dual is an exact-balance transshipment with
   per-arc reward w_e, solved as min-cost max-flow; the optimal primal
   levels are recovered from the residual-network potentials. *)
let solve_flow_arcs n arcs =
  (match topo_of_arcs n arcs with
  | None -> raise Cyclic
  | Some _ -> ());
  let net = Mincost_flow.create (n + 2) in
  let source = n and sink = n + 1 in
  let c = Array.make n 0 in
  List.iter
    (fun (u, _, v, _, _) ->
      c.(v) <- c.(v) + 1;
      c.(u) <- c.(u) - 1)
    arcs;
  let cap = big_capacity_arcs n arcs in
  List.iter
    (fun (u, _, v, _, w) ->
      ignore (Mincost_flow.add_arc net ~src:u ~dst:v ~capacity:cap ~cost:(-w)))
    arcs;
  let supply_total = ref 0 in
  Array.iteri
    (fun v cv ->
      if cv > 0 then begin
        ignore
          (Mincost_flow.add_arc net ~src:v ~dst:sink ~capacity:cv ~cost:0);
        supply_total := !supply_total + cv
      end
      else if cv < 0 then
        ignore
          (Mincost_flow.add_arc net ~src:source ~dst:v ~capacity:(-cv)
             ~cost:0))
    c;
  let solution = Mincost_flow.min_cost_max_flow net ~source ~sink in
  if solution.Mincost_flow.flow <> !supply_total then
    failwith "Balancer: dual transshipment infeasible (graph bug)";
  (net, solution, arcs)

let solve_flow ?weight g =
  solve_flow_arcs (Graph.node_count g) (arcs_of ?weight g)

let optimal_levels_arcs n arcs =
  let net, _solution, _arcs = solve_flow_arcs n arcs in
  match Mincost_flow.potentials net with
  | None -> failwith "Balancer: negative cycle in optimal residual network"
  | Some pi ->
    let levels = Array.init n (fun v -> -pi.(v)) in
    let lowest = Array.fold_left min 0 levels in
    Array.map (fun l -> l - lowest) levels

let optimal_levels ?weight g =
  let net, _solution, _arcs = solve_flow ?weight g in
  match Mincost_flow.potentials net with
  | None -> failwith "Balancer: negative cycle in optimal residual network"
  | Some pi ->
    let n = Graph.node_count g in
    let levels = Array.init n (fun v -> -pi.(v)) in
    let lowest = Array.fold_left min 0 levels in
    let levels = Array.map (fun l -> l - lowest) levels in
    if not (is_feasible ?weight g levels) then
      failwith "Balancer: optimal levels infeasible (duality bug)";
    levels

let dual_lower_bound ?weight g =
  let _net, solution, arcs = solve_flow ?weight g in
  let weight_sum = List.fold_left (fun acc (_, _, _, _, w) -> acc + w) 0 arcs in
  -solution.Mincost_flow.cost - weight_sum

let insert_buffers ?(weight = default_weight) ?(skip = no_skip)
    ?(to_capacity = fun slack -> slack) g levels =
  if
    not
      (List.for_all
         (fun (u, _, v, _, w) -> levels.(v) - levels.(u) >= w)
         (arcs_of ~weight ~skip g))
  then invalid_arg "Balancer.insert_buffers: infeasible level assignment";
  let ng = Graph.create () in
  Graph.iter_nodes g (fun n ->
      let id = Graph.add ng ~label:n.Graph.label n.Graph.op n.Graph.inputs in
      assert (id = n.Graph.id));
  Graph.iter_nodes g (fun n ->
      let w = weight n in
      Array.iteri
        (fun slot dests ->
          List.iter
            (fun { Graph.ep_node = v; ep_port = port } ->
              let slack =
                if skip n.Graph.id v then 0
                else to_capacity (levels.(v) - levels.(n.Graph.id) - w)
              in
              if slack <= 0 then
                Graph.connect_slot ng ~src:n.Graph.id ~slot ~dst:v ~port
              else begin
                let fifo =
                  Graph.add ng
                    ~label:(Printf.sprintf "bal[%d->%d]" n.Graph.id v)
                    (Opcode.Fifo slack) [| Graph.In_arc |]
                  (* capacity already converted by [to_capacity] *)
                in
                Graph.connect_slot ng ~src:n.Graph.id ~slot ~dst:fifo ~port:0;
                Graph.connect ng ~src:fifo ~dst:v ~port
              end)
            dests)
        n.Graph.dests);
  ng

let balance ?(strategy = `Optimal) g =
  let levels =
    match strategy with
    | `Naive -> naive_levels g
    | `Reduced -> reduce_levels g (naive_levels g)
    | `Optimal -> optimal_levels g
  in
  insert_buffers g levels

(* Steady-state phase balancing (used by the compiler for graphs whose
   gates discard stream prefixes).  At the maximal rate, every rigid cell
   satisfies  phase(v) = phase(u) + 1 + 2*shift(u)  across an arc, where
   [shift u] is the wave position of the first element the gate at [u]
   forwards (0 for ordinary cells): the gate's k-th forwarded result is its
   (shift+k)-th firing, displacing the phase by two time units per skipped
   element (see the Figure 4 discussion in DESIGN.md).  A FIFO of capacity
   c absorbs up to 2c phase units, so slack converts to capacity by
   ceil(slack / 2). *)
let phase_weight ~shift n = 1 + (2 * shift n.Graph.id)

(* Feedback rings are rigid: every internal arc imposes the exact phase
   relation  phase(v) = phase(u) + w(u).  When that equality system is
   consistent around every cycle of the component (the companion scheme's
   even ring, where the token offsets encoded in the shifts make the cycle
   sums zero), the whole component moves as one rigid body: we solve the
   internal offsets by BFS and contract the component to a single LP
   variable.  When it is inconsistent (Todd's ring, intrinsically below
   the maximal rate), the component is self-timed: its internal arcs are
   left out of the LP entirely and never buffered. *)
type scc_info = {
  var_of : int array;       (* node -> LP variable (representative) *)
  delta : int array;        (* node -> offset within its rigid body *)
  self_timed : int -> int -> bool;  (* both endpoints in one inconsistent scc *)
}

let analyze_sccs g ~weight =
  let n = Graph.node_count g in
  let var_of = Array.init n Fun.id in
  let delta = Array.make n 0 in
  let comp = Hashtbl.create 16 in
  let inconsistent = Hashtbl.create 4 in
  List.iteri
    (fun ci nodes ->
      List.iter (fun v -> Hashtbl.replace comp v ci) nodes;
      (* internal equality propagation from the representative *)
      let rep = List.hd nodes in
      let member v = Hashtbl.find_opt comp v = Some ci in
      let d = Hashtbl.create 8 in
      Hashtbl.replace d rep 0;
      let queue = Queue.create () in
      Queue.add rep queue;
      let ok = ref true in
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let du = Hashtbl.find d u in
        let w = weight (Graph.node g u) in
        List.iter
          (fun v ->
            if member v then
              match Hashtbl.find_opt d v with
              | Some dv -> if dv <> du + w then ok := false
              | None ->
                Hashtbl.replace d v (du + w);
                Queue.add v queue)
          (Analysis.successors g u)
      done;
      if !ok && List.for_all (fun v -> Hashtbl.mem d v) nodes then
        List.iter
          (fun v ->
            var_of.(v) <- rep;
            delta.(v) <- Hashtbl.find d v)
          nodes
      else Hashtbl.replace inconsistent ci ())
    (Analysis.cycles g);
  let self_timed u v =
    match (Hashtbl.find_opt comp u, Hashtbl.find_opt comp v) with
    | Some a, Some b -> a = b && Hashtbl.mem inconsistent a
    | _ -> false
  in
  { var_of; delta; self_timed }

let phase_balance ?(strategy = `Optimal) ~shift g =
  let weight = phase_weight ~shift in
  let n = Graph.node_count g in
  let info = analyze_sccs g ~weight in
  (* contracted arc list over LP variables; intra-rigid-body arcs vanish
     (their contracted weight is 0 between identical variables and they
     are satisfied by construction) *)
  let contracted =
    List.filter_map
      (fun (u, slot, v, port, w) ->
        if info.self_timed u v then None
        else
          let cu = info.var_of.(u) and cv = info.var_of.(v) in
          if cu = cv then None
          else Some (cu, slot, cv, port, w + info.delta.(u) - info.delta.(v)))
      (arcs_of ~weight g)
  in
  let var_levels =
    match strategy with
    | `Naive -> naive_levels_arcs n contracted
    | `Reduced -> reduce_levels_arcs n contracted (naive_levels_arcs n contracted)
    | `Optimal -> optimal_levels_arcs n contracted
  in
  let levels =
    Array.init n (fun v -> var_levels.(info.var_of.(v)) + info.delta.(v))
  in
  (* normalize (insert_buffers only needs feasibility, not positivity) *)
  let skip u v = info.self_timed u v || info.var_of.(u) = info.var_of.(v) in
  insert_buffers ~weight ~skip
    ~to_capacity:(fun slack -> if slack <= 0 then 0 else ((slack + 1) / 2) + 1)
    g levels
