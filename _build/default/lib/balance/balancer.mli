open Dfg

(** Balancing of acyclic instruction graphs (Section 8 of the paper).

    A {e level assignment} gives each cell an integer depth such that for
    every arc [u -> v]:  [level v - level u >= delay u] (delay is 1, or
    [k] for a [Fifo k]).  The {e slack} of an arc is the excess
    [level v - level u - delay u]; inserting a FIFO of that capacity on
    the arc makes every path exactly equal, which is the paper's condition
    for fully pipelined operation.  All [Input] cells are constrained to a
    common level so that parallel input streams stay aligned.

    Three level-construction algorithms are provided, matching the
    paper's conclusions (1)-(3):
    - {!naive_levels} — longest-path from the inputs (polynomial,
      always feasible, usually wasteful);
    - {!reduce_levels} — a polynomial local-improvement pass over any
      feasible assignment ("an algorithm which can effectively reduce the
      buffering in many cases");
    - {!optimal_levels} — minimum total buffering, solved exactly as the
      LP dual of a min-cost flow problem. *)

exception Cyclic
(** Raised when the graph has feedback cycles (balance for-iter loops with
    the companion transformation instead, Section 7). *)

val naive_levels : ?weight:(Graph.node -> int) -> Graph.t -> int array
(** Longest-path levels.  [weight] gives each node's contribution to the
    paths through it (default {!Analysis.node_delay}). @raise Cyclic *)

val reduce_levels :
  ?weight:(Graph.node -> int) -> Graph.t -> int array -> int array
(** Iterated coordinate descent: move each unpinned cell to the end of its
    feasible interval that lowers total slack; repeat to a fixpoint.
    Input is any feasible assignment; result is feasible and no worse. *)

val optimal_levels : ?weight:(Graph.node -> int) -> Graph.t -> int array
(** Minimum-total-slack levels via min-cost flow (exact optimum).
    @raise Cyclic *)

val is_feasible : ?weight:(Graph.node -> int) -> Graph.t -> int array -> bool
(** Every arc satisfies the level constraint. *)

val buffer_cost : ?weight:(Graph.node -> int) -> Graph.t -> int array -> int
(** Total slack = number of buffer stages the assignment implies. *)

val insert_buffers :
  ?weight:(Graph.node -> int) ->
  ?skip:(int -> int -> bool) ->
  ?to_capacity:(int -> int) ->
  Graph.t ->
  int array ->
  Graph.t
(** New graph with a [Fifo (to_capacity slack)] inserted on every arc with
    positive converted slack (default conversion: identity).  Node ids
    [0 .. node_count-1] are preserved; FIFOs are appended after them. *)

val balance : ?strategy:[ `Naive | `Reduced | `Optimal ] -> Graph.t -> Graph.t
(** Convenience: compute levels (default [`Optimal]) and insert buffers.
    @raise Cyclic *)

val phase_balance :
  ?strategy:[ `Naive | `Reduced | `Optimal ] ->
  shift:(int -> int) ->
  Graph.t ->
  Graph.t
(** Steady-state {e phase} balancing for compiled graphs whose gates
    discard stream prefixes.  [shift id] is the wave position of the first
    element the gate with node id [id] forwards (0 for ordinary cells); a
    gate displaces downstream phases by [2 * shift] time units, and FIFO
    capacity of [ceil (slack/2)] is inserted to absorb the differences —
    this reproduces the FIFO(2) buffers of the paper's Figure 4.
    Arcs inside strongly connected components (for-iter feedback loops,
    which are self-timed) are left untouched; only the acyclic
    interconnection is balanced, per Theorem 4. *)

val dual_lower_bound : ?weight:(Graph.node -> int) -> Graph.t -> int
(** The min-cost-flow dual objective: a certified lower bound on the
    buffer stages any balancing needs.  Equals
    [buffer_cost g (optimal_levels g)] by strong duality — asserted in
    the test suite. @raise Cyclic *)
