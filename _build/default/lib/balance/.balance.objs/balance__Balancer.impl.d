lib/balance/balancer.ml: Analysis Array Dfg Fun Graph Hashtbl List Mcf Opcode Printf Queue
