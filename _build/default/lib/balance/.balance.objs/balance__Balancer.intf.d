lib/balance/balancer.mli: Dfg Graph
