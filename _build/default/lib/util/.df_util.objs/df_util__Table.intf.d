lib/util/table.mli:
