lib/util/pqueue.mli:
