type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let column_count t =
  List.fold_left
    (fun acc row -> max acc (List.length row))
    (List.length t.headers) t.rows

let cell row i = match List.nth_opt row i with Some c -> c | None -> ""

let render t =
  let cols = column_count t in
  let rows = List.rev t.rows in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (cell row i)))
      (String.length (cell t.headers i))
      rows
  in
  let widths = List.init cols width in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line row =
    String.concat "  "
      (List.mapi (fun i w -> pad (cell row i) w) widths)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)
