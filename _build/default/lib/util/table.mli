(** Plain-text table rendering for experiment reports.

    The benchmark harness prints one table per reproduced figure/claim; this
    module right-pads cells and draws a header rule, nothing more. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with empty
    cells; longer rows extend the column count. *)

val render : t -> string
(** Render with aligned columns, a header separator and a trailing
    newline. *)

val print : t -> unit
(** [render] to stdout. *)
