(* A pipe-structured program in the style the paper attributes to its
   application codes ("Modeling the Weather with a Data Flow
   Supercomputer"): several forall/for-iter blocks connected as an acyclic
   producer/consumer graph, compiled and balanced into one fully pipelined
   machine program (Theorem 4), then also run on the machine-level
   simulator to measure the array-memory traffic claim of Section 2.

   Run with:  dune exec examples/weather_pipe.exe *)

module D = Compiler.Driver
module PC = Compiler.Program_compile
module ME = Machine.Machine_engine
module Arch = Machine.Arch

let m = 62

(* four blocks: smooth -> flux -> integrate (recurrence) -> blend *)
let source =
  Printf.sprintf
    {|
param m = %d;
input P : array[real] [0, m+1];   %% pressure field
input V : array[real] [0, m+1];   %% velocity field

S : array[real] :=
  forall i in [0, m+1]
  construct
    if (i = 0) | (i = m+1) then P[i]
    else 0.25 * (P[i-1] + 2.*P[i] + P[i+1])
    endif
  endall;

F : array[real] :=
  forall i in [1, m]
  construct
    0.5 * (S[i+1] - S[i-1]) * V[i]
  endall;

Q : array[real] :=
  for
    i : integer := 2;
    T : array[real] := [1: 0]
  do
    let acc : real := 0.98 * T[i-1] + F[i]
    in
      if i < m then iter T := T[i: acc]; i := i + 1 enditer else T endif
    endlet
  endfor;

W : array[real] :=
  forall i in [1, m-1]
  construct
    V[i] + min(Q[i], 1.5)
  endall;
|}
    m

let () =
  let prog, compiled = D.compile_source source in
  Printf.printf "pipe-structured program: %d blocks, %d cells\n"
    (List.length compiled.PC.cp_outputs)
    (Dfg.Graph.node_count compiled.PC.cp_graph);
  List.iter
    (fun (blk, scheme) -> Printf.printf "  block %-2s -> %s\n" blk scheme)
    compiled.PC.cp_schemes;

  let st = Random.State.make [| 7 |] in
  let field () =
    List.init (m + 2) (fun i ->
        sin (float_of_int i /. 7.) +. Random.State.float st 0.1)
  in
  let inputs =
    [ ("P", D.wave_of_floats (field ())); ("V", D.wave_of_floats (field ())) ]
  in
  let result = D.run ~waves:6 compiled ~inputs in
  D.check_against_oracle prog compiled result ~inputs;
  print_endline "all four block outputs match the Val interpreter";
  Printf.printf "end-to-end initiation interval at W: %.3f\n"
    (Sim.Metrics.output_interval result "W");

  (* machine-level: streamed arrays vs the stored-array baseline *)
  let machine_inputs =
    List.map
      (fun (name, w) ->
        (name, List.concat_map (fun _ -> w) (List.init 4 Fun.id)))
      inputs
  in
  let table =
    Df_util.Table.create
      [ "array policy"; "time"; "AM ops"; "AM fraction"; "RN packets" ]
  in
  List.iter
    (fun policy ->
      let arch = { Arch.default with Arch.array_policy = policy } in
      let r = ME.run_cfg ME.default_config ~arch compiled.PC.cp_graph ~inputs:machine_inputs in
      Df_util.Table.add_row table
        [
          (match policy with
          | Arch.Streamed -> "streamed (paper)"
          | Arch.Stored -> "stored baseline");
          string_of_int r.ME.end_time;
          string_of_int r.ME.stats.ME.am_ops;
          Printf.sprintf "%.3f" (ME.am_fraction r.ME.stats);
          string_of_int r.ME.stats.ME.result_packets;
        ])
    [ Arch.Streamed; Arch.Stored ];
  Df_util.Table.print table
