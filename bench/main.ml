(* Benchmark harness: regenerates every figure and quantitative claim of
   Dennis & Gao (ICPP'83 / CSG Memo 233).  One experiment per paper
   artifact (see DESIGN.md's experiment index); each prints the paper's
   predicted value next to the measured one and a PASS/FAIL verdict on
   the qualitative shape.  Bechamel micro-benchmarks of the toolchain
   run at the end. *)

open Dfg
module D = Compiler.Driver
module PC = Compiler.Program_compile
module FC = Compiler.Foriter_compile
module ME = Machine.Machine_engine
module Arch = Machine.Arch
module Table = Df_util.Table

(* Experiments are independent jobs fanned over Exec.Pool, so nothing
   may write to stdout directly: each experiment renders into its own
   [ctx] and the main driver prints the buffers in submission order —
   which makes the merged report byte-identical at any worker count. *)
type ctx = {
  buf : Buffer.t;
  mutable ctx_failures : int;
  entries : Obs.Bench_json.entry Queue.t;
      (* recorded in execution order — no write-time reversal *)
}

let new_ctx () =
  { buf = Buffer.create 4096; ctx_failures = 0; entries = Queue.create () }

let pf ctx fmt = Printf.ksprintf (Buffer.add_string ctx.buf) fmt

let verdict ctx ~ok fmt =
  Printf.ksprintf
    (fun s ->
      if not ok then ctx.ctx_failures <- ctx.ctx_failures + 1;
      pf ctx "  [%s] %s\n" (if ok then "PASS" else "FAIL") s)
    fmt

(* Machine-readable results, one entry per experiment, written as
   BENCH_PIPELINE.json at the end of the run (path overridable via the
   BENCH_JSON environment variable). *)
let record ctx ?predicted ?measured ?units ?detail ~ok id title =
  Queue.add
    (Obs.Bench_json.entry ?predicted ?measured ?units ?detail ~ok id title)
    ctx.entries

let header ctx id title claim =
  pf ctx "\n=== %s: %s ===\n" id title;
  pf ctx "paper: %s\n" claim

let print_table ctx table = Buffer.add_string ctx.buf (Table.render table)

let interval_of ?(waves = 10) ?options source inputs output =
  let prog, cp = D.compile_source ?options source in
  let result = D.run ~waves cp ~inputs in
  D.check_against_oracle prog cp result ~inputs;
  (Sim.Metrics.output_interval result output, cp, result)

(* ------------------------------------------------------------------ *)
(* E1 — Figure 2: a three-stage pipe runs fully pipelined, and the rate
   is independent of pipeline depth.                                    *)
(* ------------------------------------------------------------------ *)

let fig2_graph ~extra_depth =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let b = Graph.add g (Opcode.Input "b") [||] in
  let mult1 = Graph.add g ~label:"cell1" (Opcode.Arith Opcode.Mul)
      [| Graph.In_arc; Graph.In_arc |] in
  let add = Graph.add g ~label:"cell2" (Opcode.Arith Opcode.Add)
      [| Graph.In_arc; Graph.In_const (Value.Real 2.) |] in
  let sub = Graph.add g ~label:"cell3" (Opcode.Arith Opcode.Sub)
      [| Graph.In_arc; Graph.In_const (Value.Real 3.) |] in
  let mult2 = Graph.add g ~label:"cell4" (Opcode.Arith Opcode.Mul)
      [| Graph.In_arc; Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:mult1 ~port:0;
  Graph.connect g ~src:b ~dst:mult1 ~port:1;
  Graph.connect g ~src:mult1 ~dst:add ~port:0;
  Graph.connect g ~src:mult1 ~dst:sub ~port:0;
  Graph.connect g ~src:add ~dst:mult2 ~port:0;
  Graph.connect g ~src:sub ~dst:mult2 ~port:1;
  let last = ref mult2 in
  for _ = 1 to extra_depth do
    let id = Graph.add g Opcode.Id [| Graph.In_arc |] in
    Graph.connect g ~src:!last ~dst:id ~port:0;
    last := id
  done;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:!last ~dst:out ~port:0;
  g

let e1 ctx =
  header ctx "E1" "Figure 2 pipeline"
    "a balanced pipe emits one result every ~2 instruction times, \
     independent of depth";
  let n = 600 in
  let xs = List.init n (fun i -> Value.Real (float_of_int i /. 100.)) in
  let table = Table.create [ "pipeline depth"; "interval"; "rate" ] in
  let ok = ref true in
  let worst = ref 0.0 in
  List.iter
    (fun extra ->
      let g = fig2_graph ~extra_depth:extra in
      let r = Sim.Engine.run_cfg Run_config.default g ~inputs:[ ("a", xs); ("b", xs) ] in
      let interval = Sim.Metrics.output_interval r "r" in
      if Float.abs (interval -. 2.0) > 0.05 then ok := false;
      if interval > !worst then worst := interval;
      Table.add_row table
        [ string_of_int (3 + extra); Printf.sprintf "%.3f" interval;
          Printf.sprintf "1/%.2f" interval ])
    [ 0; 5; 17; 37 ];
  print_table ctx table;
  verdict ctx ~ok:!ok "interval stays at 2.0 for depths 3..40";
  record ctx ~predicted:2.0 ~measured:!worst ~ok:!ok
    ~detail:"worst interval over pipeline depths 3..40" "E1"
    "Figure 2 pipeline: rate independent of depth"

(* ------------------------------------------------------------------ *)
(* E2 — Section 3: unbalanced graphs jam; balancing restores the rate.  *)
(* ------------------------------------------------------------------ *)

let diamond ~skew =
  let g = Graph.create () in
  let a = Graph.add g (Opcode.Input "a") [||] in
  let split = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:a ~dst:split ~port:0;
  let short = Graph.add g Opcode.Id [| Graph.In_arc |] in
  Graph.connect g ~src:split ~dst:short ~port:0;
  let long_end = ref split in
  for _ = 0 to skew do
    let id = Graph.add g Opcode.Id [| Graph.In_arc |] in
    Graph.connect g ~src:!long_end ~dst:id ~port:0;
    long_end := id
  done;
  let join = Graph.add g (Opcode.Arith Opcode.Add) [| Graph.In_arc; Graph.In_arc |] in
  Graph.connect g ~src:short ~dst:join ~port:0;
  Graph.connect g ~src:!long_end ~dst:join ~port:1;
  let out = Graph.add g (Opcode.Output "r") [| Graph.In_arc |] in
  Graph.connect g ~src:join ~dst:out ~port:0;
  g

let e2 ctx =
  header ctx "E2" "balancing claim"
    "computation rate = rate of the slowest stage; inserting FIFOs \
     (identity cells) rebalances to the maximum";
  let n = 400 in
  let xs = List.init n (fun i -> Value.Int i) in
  let table =
    Table.create [ "skew"; "unbalanced"; "balanced"; "buffers added" ]
  in
  let ok = ref true in
  let worst_bal = ref 0.0 in
  List.iter
    (fun skew ->
      let g = diamond ~skew in
      let raw = Sim.Engine.run_cfg Run_config.default g ~inputs:[ ("a", xs) ] in
      let raw_i = Sim.Metrics.output_interval raw "r" in
      let balanced = Balance.Balancer.balance ~strategy:`Optimal g in
      let bal = Sim.Engine.run_cfg Run_config.default balanced ~inputs:[ ("a", xs) ] in
      let bal_i = Sim.Metrics.output_interval bal "r" in
      let buffers = Graph.node_count balanced - Graph.node_count g in
      if bal_i > 2.05 then ok := false;
      if skew >= 2 && raw_i < 2.4 then ok := false;
      if bal_i > !worst_bal then worst_bal := bal_i;
      Table.add_row table
        [ string_of_int skew; Printf.sprintf "%.3f" raw_i;
          Printf.sprintf "%.3f" bal_i; string_of_int buffers ])
    [ 1; 2; 4; 8; 16 ];
  print_table ctx table;
  verdict ctx ~ok:!ok "unbalanced diamonds jam; optimal balancing restores 2.0";
  record ctx ~predicted:2.0 ~measured:!worst_bal ~ok:!ok
    ~detail:"worst balanced interval over skews 1..16" "E2"
    "balancing restores the maximal rate"

(* ------------------------------------------------------------------ *)
(* E3 — Figure 4: array selection with skew FIFOs.                      *)
(* ------------------------------------------------------------------ *)

let e3 ctx =
  header ctx "E3" "Figure 4 array selection"
    "gates discard boundary elements, FIFO(2)-style buffers absorb the \
     +/-1 window skew; the pipe is input-limited at 2(m+2)/m";
  let table = Table.create [ "m"; "predicted"; "measured"; "FIFO stages" ] in
  let ok = ref true in
  let last = ref (0.0, 0.0) in
  List.iter
    (fun m ->
      let st = Random.State.make [| m |] in
      let inputs =
        [ ("C", D.wave_of_floats (Sources.random_wave st (m + 2))) ]
      in
      let interval, cp, _ = interval_of (Sources.fig4_kernel m) inputs "A" in
      let predicted = 2.0 *. float_of_int (m + 2) /. float_of_int m in
      last := (predicted, interval);
      let fifo_stages =
        Graph.fold_nodes cp.PC.cp_graph ~init:0 ~f:(fun acc n ->
            match n.Graph.op with Opcode.Fifo k -> acc + k | _ -> acc)
      in
      if Float.abs (interval -. predicted) > 0.1 then ok := false;
      Table.add_row table
        [ string_of_int m; Printf.sprintf "%.3f" predicted;
          Printf.sprintf "%.3f" interval; string_of_int fifo_stages ])
    [ 16; 64; 256; 1024 ];
  print_table ctx table;
  verdict ctx ~ok:!ok "measured interval tracks the input-limited prediction";
  let predicted, measured = !last in
  record ctx ~predicted ~measured ~ok:!ok ~detail:"m=1024 window selection" "E3"
    "Figure 4 array selection at the input-limited rate"

(* ------------------------------------------------------------------ *)
(* E4 — Figure 5: if-then-else with switched operands.                  *)
(* ------------------------------------------------------------------ *)

let e4 ctx =
  header ctx "E4" "Figure 5 conditional"
    "both arms equal length after FIFO insertion, control reaches the \
     merge through a FIFO: fully pipelined (interval 2)";
  let n = 255 in
  let st = Random.State.make [| 5 |] in
  let inputs =
    [ ("C", List.init (n + 1) (fun _ -> Value.Bool (Random.State.bool st)));
      ("A", D.wave_of_floats (Sources.random_wave st (n + 1)));
      ("B", D.wave_of_floats (Sources.random_wave st (n + 1))) ]
  in
  let interval, _, _ = interval_of (Sources.fig5_conditional n) inputs "R" in
  let table = Table.create [ "n"; "predicted"; "measured" ] in
  Table.add_row table
    [ string_of_int n; "2.000"; Printf.sprintf "%.3f" interval ];
  print_table ctx table;
  let ok = Float.abs (interval -. 2.0) <= 0.05 in
  verdict ctx ~ok "conditional pipe fully pipelined (values oracle-checked)";
  record ctx ~predicted:2.0 ~measured:interval ~ok "E4"
    "Figure 5 conditional fully pipelined"

(* ------------------------------------------------------------------ *)
(* E5 — Figure 6 / Theorem 2: Example 1.                                *)
(* ------------------------------------------------------------------ *)

let e5 ctx =
  header ctx "E5" "Figure 6: primitive forall (Example 1)"
    "cascade of definition and accumulation graphs, boundary/interior \
     merge under control sequences: fully pipelined";
  let m = 254 in
  let st = Random.State.make [| 6 |] in
  let inputs =
    [ ("C", D.wave_of_floats (Sources.random_wave st (m + 2)));
      ("B", D.wave_of_floats (Sources.random_wave st (m + 2))) ]
  in
  let interval, cp, _ = interval_of (Sources.example1 m) inputs "A" in
  let census = Graph.opcode_census cp.PC.cp_graph in
  let table = Table.create [ "metric"; "value" ] in
  Table.add_row table [ "interval"; Printf.sprintf "%.3f" interval ];
  List.iter
    (fun (op, k) -> Table.add_row table [ op; string_of_int k ])
    census;
  print_table ctx table;
  let iok = Float.abs (interval -. 2.0) <= 0.05 in
  verdict ctx ~ok:iok "Example 1 fully pipelined at interval %.3f" interval;
  let gates = Option.value ~default:0 (List.assoc_opt "TGATE" census) in
  verdict ctx ~ok:(gates >= 3)
    "selection gates present as in Figure 6 (%d gates)" gates;
  record ctx ~predicted:2.0 ~measured:interval
    ~ok:(iok && gates >= 3)
    "E5" "Figure 6 primitive forall (Example 1)"

(* ------------------------------------------------------------------ *)
(* E6/E7 — Figures 7 and 8: Todd 1/3 vs companion 1/2.                  *)
(* ------------------------------------------------------------------ *)

let e6_e7 ctx =
  header ctx "E6+E7" "Figures 7 and 8: for-iter schemes"
    "Todd's 3-cell feedback loop caps the rate at 1/3; the companion \
     pipeline restores the maximum 1/2";
  let m = 255 in
  let st = Random.State.make [| 7 |] in
  let inputs =
    [ ("A", D.wave_of_floats (Sources.tame_wave st (m + 1)));
      ("B", D.wave_of_floats (Sources.random_wave st (m + 1))) ]
  in
  let table =
    Table.create [ "scheme"; "paper rate"; "measured interval"; "cells" ]
  in
  let measure scheme =
    let options = { PC.default_options with PC.scheme } in
    let interval, cp, _ =
      interval_of ~options (Sources.example2 m) inputs "X"
    in
    (interval, Graph.node_count cp.PC.cp_graph)
  in
  let todd, todd_cells = measure FC.Todd in
  let comp, comp_cells = measure FC.Companion in
  Table.add_row table
    [ "Todd (fig 7)"; "1/3"; Printf.sprintf "%.3f" todd;
      string_of_int todd_cells ];
  Table.add_row table
    [ "companion (fig 8)"; "1/2"; Printf.sprintf "%.3f" comp;
      string_of_int comp_cells ];
  print_table ctx table;
  verdict ctx ~ok:(todd > 2.8 && todd < 3.2) "Todd limited to ~1/3 (%.3f)" todd;
  verdict ctx ~ok:(comp < 2.1) "companion restores ~1/2 (%.3f)" comp;
  record ctx ~predicted:3.0 ~measured:todd
    ~ok:(todd > 2.8 && todd < 3.2)
    "E6" "Figure 7: Todd's scheme capped at 1/3";
  record ctx ~predicted:2.0 ~measured:comp ~ok:(comp < 2.1) "E7"
    "Figure 8: companion scheme restores 1/2"

(* ------------------------------------------------------------------ *)
(* E8 — companion vs Todd as the recurrence body deepens.               *)
(* ------------------------------------------------------------------ *)

let e8 ctx =
  header ctx "E8" "companion tree claim"
    "G is associative, so deeper recurrence bodies still run at 1/2 \
     under the companion scheme while the direct loop degrades";
  let m = 127 in
  let table =
    Table.create [ "body depth"; "todd (predicted)"; "todd"; "companion" ]
  in
  let ok = ref true in
  let worst_comp = ref 0.0 in
  List.iter
    (fun depth ->
      let src = Sources.deep_recurrence ~depth m in
      let st = Random.State.make [| depth |] in
      let inputs =
        [ ("A", D.wave_of_floats (Sources.tame_wave st (m + 1)));
          ("B", D.wave_of_floats (Sources.tame_wave st (m + 1))) ]
      in
      let measure scheme =
        let options = { PC.default_options with PC.scheme } in
        let interval, _, _ = interval_of ~options src inputs "X" in
        interval
      in
      let todd = measure FC.Todd in
      let comp = measure FC.Companion in
      if comp > !worst_comp then worst_comp := comp;
      (* Todd's loop threads x[i-1] through [depth] MUL+ADD pairs, the
         pacing ADD and the merge: a cycle of 2*depth+2 cells *)
      let todd_predicted = float_of_int ((2 * depth) + 2) in
      if comp > 2.15 then ok := false;
      if Float.abs (todd -. todd_predicted) > 0.5 then ok := false;
      Table.add_row table
        [ string_of_int depth; Printf.sprintf "%.0f" todd_predicted;
          Printf.sprintf "%.3f" todd; Printf.sprintf "%.3f" comp ])
    [ 1; 2; 4; 8 ];
  print_table ctx table;
  verdict ctx ~ok:!ok "companion stays at ~2.0 while Todd degrades as 2d+2";
  (* the log2 tree itself: larger feedback distances still at max rate *)
  let table2 =
    Table.create [ "companion distance"; "G levels"; "cells"; "interval" ]
  in
  let ok2 = ref true in
  List.iter
    (fun distance ->
      let options =
        { PC.default_options with
          PC.scheme = FC.Companion;
          companion_distance = distance;
        }
      in
      let st = Random.State.make [| distance |] in
      let inputs =
        [ ("A", D.wave_of_floats (Sources.tame_wave st (m + 1)));
          ("B", D.wave_of_floats (Sources.tame_wave st (m + 1))) ]
      in
      let interval, cp, _ =
        interval_of ~options (Sources.example2 m) inputs "X"
      in
      (* the ring merge performs d seed firings per wave of n = m-1
         computed elements: predicted interval 2(n+d)/(n+1) *)
      let predicted =
        2.0 *. float_of_int (m - 1 + distance) /. float_of_int m
      in
      if Float.abs (interval -. predicted) > 0.05 then ok2 := false;
      let levels =
        int_of_float (Float.round (Float.log2 (float_of_int distance)))
      in
      Table.add_row table2
        [ string_of_int distance; string_of_int levels;
          string_of_int (Graph.node_count cp.PC.cp_graph);
          Printf.sprintf "%.3f (pred %.3f)" interval predicted ])
    [ 2; 4; 8 ];
  print_table ctx table2;
  verdict ctx ~ok:!ok2
    "the log2(d)-level G tree tracks its predicted near-maximal rate";
  record ctx ~predicted:2.0 ~measured:!worst_comp
    ~ok:(!ok && !ok2)
    ~detail:"worst companion interval over body depths 1..8" "E8"
    "companion tree stays at 1/2 as the recurrence deepens"

(* ------------------------------------------------------------------ *)
(* E9 — Figure 3 / Theorem 4: the whole pipe-structured program.        *)
(* ------------------------------------------------------------------ *)

let e9 ctx =
  header ctx "E9" "Figure 3 pipe-structured program"
    "blocks connected producer-to-consumer and balanced: the complete \
     program is fully pipelined end to end";
  let m = 126 in
  let st = Random.State.make [| 9 |] in
  let inputs =
    [ ("C", D.wave_of_floats (Sources.tame_wave st (m + 2)));
      ("B", D.wave_of_floats (Sources.tame_wave st (m + 2))) ]
  in
  let interval, cp, result = interval_of (Sources.figure3 m) inputs "X" in
  let a_interval = Sim.Metrics.output_interval result "A" in
  let predicted = 2.0 *. float_of_int (m + 2) /. float_of_int m in
  let table = Table.create [ "output"; "predicted"; "measured" ] in
  Table.add_row table [ "A"; "2.000"; Printf.sprintf "%.3f" a_interval ];
  Table.add_row table
    [ "X"; Printf.sprintf "%.3f" predicted; Printf.sprintf "%.3f" interval ];
  print_table ctx table;
  pf ctx "  block mappings: %s\n"
    (String.concat ", "
       (List.map (fun (b, s) -> b ^ ":" ^ s) cp.PC.cp_schemes));
  let ok = Float.abs (interval -. predicted) <= 0.15 && a_interval <= 2.05 in
  verdict ctx ~ok "whole program pipelined end to end (values oracle-checked)";
  record ctx ~predicted ~measured:interval ~ok "E9"
    "Figure 3 pipe-structured program end to end"

(* ------------------------------------------------------------------ *)
(* E10 — Section 8: naive >= reduced >= optimal = LP dual bound.        *)
(* ------------------------------------------------------------------ *)

let e10 ctx =
  header ctx "E10" "optimal buffering"
    "balancing is polynomial; reduction helps; the optimum equals the \
     LP dual of min-cost flow";
  let table =
    Table.create
      [ "nodes"; "naive"; "reduced"; "optimal"; "dual bound"; "rate ok" ]
  in
  let ok = ref true in
  List.iter
    (fun (seed, layers, width) ->
      let g = Test_graphs.random_dag ~seed ~layers ~width in
      let cost l = Balance.Balancer.buffer_cost g l in
      let naive = cost (Balance.Balancer.naive_levels g) in
      let reduced =
        cost
          (Balance.Balancer.reduce_levels g (Balance.Balancer.naive_levels g))
      in
      let optimal = cost (Balance.Balancer.optimal_levels g) in
      let bound = Balance.Balancer.dual_lower_bound g in
      let balanced = Balance.Balancer.balance ~strategy:`Optimal g in
      let r =
        Sim.Engine.run_cfg Run_config.default balanced
          ~inputs:[ ("a", List.init 300 (fun i -> Value.Int i)) ]
      in
      let rate_ok = Sim.Metrics.fully_pipelined r "r" in
      if
        not
          (naive >= reduced && reduced >= optimal && optimal = bound
         && rate_ok)
      then ok := false;
      Table.add_row table
        [ string_of_int (Graph.node_count g); string_of_int naive;
          string_of_int reduced; string_of_int optimal; string_of_int bound;
          (if rate_ok then "yes" else "NO") ])
    [ (1, 4, 4); (2, 6, 6); (3, 8, 8); (4, 10, 10); (5, 12, 12) ];
  print_table ctx table;
  verdict ctx ~ok:!ok "naive >= reduced >= optimal = dual bound, all at rate 1/2";
  record ctx ~ok:!ok ~units:"buffer stages"
    ~detail:"naive >= reduced >= optimal = LP dual bound on 5 random DAGs"
    "E10" "optimal buffering matches the min-cost-flow dual"

(* ------------------------------------------------------------------ *)
(* E11 — Section 2: array-memory traffic.                               *)
(* ------------------------------------------------------------------ *)

let e11 ctx =
  header ctx "E11" "array memory traffic"
    "streaming arrays keeps AM traffic at 1/8 or less of operation \
     packets; a stored-array baseline pays far more and runs slower";
  let m = 62 in
  let _, cp = D.compile_source (Sources.figure3 m) in
  let st = Random.State.make [| 11 |] in
  let wave =
    [ ("C", D.wave_of_floats (Sources.tame_wave st (m + 2)));
      ("B", D.wave_of_floats (Sources.tame_wave st (m + 2))) ]
  in
  let feeds =
    List.map
      (fun (n, w) -> (n, List.concat_map (fun _ -> w) (List.init 4 Fun.id)))
      wave
  in
  let table =
    Table.create
      [ "policy"; "PEs"; "time"; "AM ops"; "AM fraction"; "throughput" ]
  in
  let fractions = ref [] in
  List.iter
    (fun (policy, pes) ->
      let arch =
        { Arch.default with Arch.array_policy = policy; n_pe = pes }
      in
      let r = ME.run_cfg ME.default_config ~arch cp.PC.cp_graph ~inputs:feeds in
      let outputs = List.length (ME.output_values r "X") in
      let throughput =
        float_of_int outputs /. float_of_int (max 1 r.ME.end_time)
      in
      fractions := (policy, ME.am_fraction r.ME.stats) :: !fractions;
      Table.add_row table
        [ (match policy with
          | Arch.Streamed -> "streamed"
          | Arch.Stored -> "stored");
          string_of_int pes; string_of_int r.ME.end_time;
          string_of_int r.ME.stats.ME.am_ops;
          Printf.sprintf "%.3f" (ME.am_fraction r.ME.stats);
          Printf.sprintf "%.4f" throughput ])
    [ (Arch.Streamed, 4); (Arch.Streamed, 16); (Arch.Streamed, 64);
      (Arch.Stored, 4); (Arch.Stored, 16); (Arch.Stored, 64) ];
  print_table ctx table;
  let streamed_max =
    List.fold_left
      (fun acc (p, f) -> if p = Arch.Streamed then Float.max acc f else acc)
      0.0 !fractions
  in
  let stored_min =
    List.fold_left
      (fun acc (p, f) -> if p = Arch.Stored then Float.min acc f else acc)
      1.0 !fractions
  in
  verdict ctx
    ~ok:(streamed_max <= 0.125)
    "streamed AM fraction %.3f <= 1/8" streamed_max;
  verdict ctx
    ~ok:(stored_min > streamed_max)
    "stored baseline pays more AM traffic (%.3f)" stored_min;
  record ctx ~predicted:0.125 ~measured:streamed_max
    ~ok:(streamed_max <= 0.125 && stored_min > streamed_max)
    ~units:"AM fraction" "E11" "streamed arrays keep AM traffic under 1/8"

(* ------------------------------------------------------------------ *)
(* E12 — Section 9 remark: trading delay for rate with a long FIFO.     *)
(* ------------------------------------------------------------------ *)

(* R interleaved independent recurrences x_{r,i} = a*x_{r,i-1} + b_{r,i},
   streamed i-major: the feedback distance becomes R, so a delay line of
   ~R in the loop lets a deep recurrence run at the maximal rate (the
   paper's "delay equal to the number of elements" trade-off). *)
let interleaved_recurrence ~rows ~len =
  let g = Graph.create () in
  let b = Graph.add g (Opcode.Input "b") [||] in
  let mul =
    Graph.add g ~label:"xmul" (Opcode.Arith Opcode.Mul)
      [| Graph.In_arc; Graph.In_const (Value.Real 0.5) |]
  in
  let add =
    Graph.add g ~label:"xadd" (Opcode.Arith Opcode.Add)
      [| Graph.In_arc; Graph.In_arc |]
  in
  Graph.connect g ~src:mul ~dst:add ~port:0;
  Graph.connect g ~src:b ~dst:add ~port:1;
  let n = rows * len in
  let mctl =
    Graph.add g
      (Opcode.Bool_source
         (Ctlseq.make ~cyclic:true [ (false, rows); (true, n - rows) ]))
      [||]
  in
  let dctl =
    Graph.add g
      (Opcode.Bool_source
         (Ctlseq.make ~cyclic:true [ (true, n - rows); (false, rows) ]))
      [||]
  in
  let ms =
    Graph.add g ~label:"loop" Opcode.Merge_switch
      [| Graph.In_arc; Graph.In_arc; Graph.In_const (Value.Real 0.);
         Graph.In_arc |]
  in
  Graph.connect g ~src:mctl ~dst:ms ~port:0;
  Graph.connect g ~src:dctl ~dst:ms ~port:3;
  Graph.connect g ~src:add ~dst:ms ~port:1;
  (if rows <= 2 then Graph.connect_slot g ~src:ms ~slot:1 ~dst:mul ~port:0
   else begin
     let fifo =
       Graph.add g ~label:"delay" (Opcode.Fifo (rows - 2)) [| Graph.In_arc |]
     in
     Graph.connect_slot g ~src:ms ~slot:1 ~dst:fifo ~port:0;
     Graph.connect g ~src:fifo ~dst:mul ~port:0
   end);
  let out = Graph.add g (Opcode.Output "x") [| Graph.In_arc |] in
  Graph.connect g ~src:ms ~dst:out ~port:0;
  g

let e12 ctx =
  header ctx "E12" "delay-for-rate trade-off"
    "a cyclic recurrence reaches the maximum rate when a delay (FIFO) \
     of length ~ the interleaving factor is inserted in the loop";
  let len = 64 in
  let table = Table.create [ "interleaved rows"; "delay line"; "interval" ] in
  let ok = ref true in
  let deepest = ref 0.0 in
  List.iter
    (fun rows ->
      let g = interleaved_recurrence ~rows ~len in
      let n = rows * len in
      let st = Random.State.make [| rows |] in
      let inputs =
        [ ("b",
           List.concat_map
             (fun _ ->
               List.map (fun f -> Value.Real f) (Sources.random_wave st n))
             (List.init 6 Fun.id)) ]
      in
      let r = Sim.Engine.run_cfg Run_config.default g ~inputs in
      let interval = Sim.Metrics.output_interval r "x" in
      deepest := interval;
      (match rows with
      | 1 -> if interval < 2.8 then ok := false (* direct loop: 1/3 *)
      | _ -> if rows >= 4 && interval > 2.1 then ok := false);
      Table.add_row table
        [ string_of_int rows; string_of_int (max 0 (rows - 2));
          Printf.sprintf "%.3f" interval ])
    [ 1; 2; 4; 16; 64 ];
  print_table ctx table;
  verdict ctx ~ok:!ok
    "rate climbs from 1/3 to the maximum as the delay line grows";
  record ctx ~predicted:2.0 ~measured:!deepest ~ok:!ok
    ~detail:"interval with 64 interleaved rows (delay line 62)" "E12"
    "delay-for-rate trade-off reaches the maximal rate"

(* ------------------------------------------------------------------ *)
(* E13 — Section 9 remark: two-dimensional arrays.                      *)
(* ------------------------------------------------------------------ *)

let e13 ctx =
  header ctx "E13" "multi-dimensional extension"
    "the extension to arrays of multiple dimensions is straightforward: \
     2-D forall blocks stream row-major and stay pipelined";
  let table = Table.create [ "grid"; "predicted"; "measured" ] in
  let ok = ref true in
  let last = ref (0.0, 0.0) in
  List.iter
    (fun n ->
      let st = Random.State.make [| n |] in
      let inputs =
        [ ("G", D.wave_of_floats (Sources.random_wave st (n * n))) ]
      in
      let interval, _, _ = interval_of (Sources.grid_2d n) inputs "L" in
      let inner = (n - 2) * (n - 2) in
      let predicted = 2.0 *. float_of_int (n * n) /. float_of_int inner in
      if Float.abs (interval -. predicted) > 0.25 then ok := false;
      last := (predicted, interval);
      Table.add_row table
        [ Printf.sprintf "%dx%d" n n; Printf.sprintf "%.3f" predicted;
          Printf.sprintf "%.3f" interval ])
    [ 8; 16; 32 ];
  print_table ctx table;
  verdict ctx ~ok:!ok "2-D stencils pipeline at the input-limited rate";
  let predicted, measured = !last in
  record ctx ~predicted ~measured ~ok:!ok ~detail:"32x32 grid" "E13"
    "2-D forall blocks stream row-major and stay pipelined"

(* ------------------------------------------------------------------ *)
(* X1 — ablation: balancing strategies on compiled programs.            *)
(* ------------------------------------------------------------------ *)

let fifo_stages g =
  Graph.fold_nodes g ~init:0 ~f:(fun acc n ->
      match n.Graph.op with Opcode.Fifo k -> acc + k | _ -> acc)

let x1 ctx =
  header ctx "X1" "ablation: balancing strategies"
    "(extension) the three balancers on compiled programs: all reach the \
     maximal rate; buffer stages are ordered naive >= reduced >= optimal";
  let m = 62 in
  let st = Random.State.make [| 41 |] in
  let inputs =
    [ ("C", D.wave_of_floats (Sources.tame_wave st (m + 2)));
      ("B", D.wave_of_floats (Sources.tame_wave st (m + 2))) ]
  in
  let table =
    Table.create [ "strategy"; "cells"; "buffer stages"; "interval" ]
  in
  let ok = ref true in
  let costs = ref [] in
  List.iter
    (fun (label, balance) ->
      let options = { PC.default_options with PC.balance } in
      let interval, cp, _ =
        interval_of ~options (Sources.figure3 m) inputs "X"
      in
      let stages = fifo_stages cp.PC.cp_graph in
      costs := stages :: !costs;
      (match balance with
      | `None -> ()
      | _ -> if interval > 2.2 then ok := false);
      Table.add_row table
        [ label; string_of_int (Graph.node_count cp.PC.cp_graph);
          string_of_int stages; Printf.sprintf "%.3f" interval ])
    [ ("none", `None); ("naive", `Naive); ("reduced", `Reduced);
      ("optimal", `Optimal) ];
  (match List.rev !costs with
  | [ _none; naive; reduced; optimal ] ->
    if not (naive >= reduced && reduced >= optimal) then ok := false
  | _ -> ok := false);
  print_table ctx table;
  verdict ctx ~ok:!ok "all balanced variants pipelined; buffers ordered";
  record ctx ~ok:!ok ~units:"buffer stages"
    ~detail:"naive/reduced/optimal balancing of Figure 3, all pipelined" "X1"
    "ablation: balancing strategies on compiled programs"

(* ------------------------------------------------------------------ *)
(* X2 — ablation: cross-block CSE.                                      *)
(* ------------------------------------------------------------------ *)

let x2 ctx =
  header ctx "X2" "ablation: common-subexpression elimination"
    "(extension) deduplicating identical cells across blocks shrinks the \
     machine program without changing values or rate";
  let m = 62 in
  let st = Random.State.make [| 42 |] in
  let inputs =
    [ ("C", D.wave_of_floats (Sources.tame_wave st (m + 2)));
      ("B", D.wave_of_floats (Sources.tame_wave st (m + 2))) ]
  in
  let table = Table.create [ "CSE"; "cells"; "arcs"; "interval" ] in
  let cells = ref [] in
  List.iter
    (fun (label, cse) ->
      let options = { PC.default_options with PC.cse } in
      let interval, cp, _ =
        interval_of ~options (Sources.figure3 m) inputs "X"
      in
      cells := Graph.node_count cp.PC.cp_graph :: !cells;
      Table.add_row table
        [ label; string_of_int (Graph.node_count cp.PC.cp_graph);
          string_of_int (Graph.arc_count cp.PC.cp_graph);
          Printf.sprintf "%.3f" interval ])
    [ ("off", false); ("on", true) ];
  print_table ctx table;
  let ok =
    match !cells with [ on; off ] -> on <= off | _ -> false
  in
  verdict ctx ~ok "CSE never grows the program; values oracle-checked both ways";
  record ctx ~ok ~units:"cells"
    ?measured:(match !cells with [ on; _ ] -> Some (float_of_int on) | _ -> None)
    ~detail:"cell count with cross-block CSE on (off in table)" "X2"
    "ablation: cross-block common-subexpression elimination"

(* ------------------------------------------------------------------ *)
(* X3 — the scientific-kernel suite.                                    *)
(* ------------------------------------------------------------------ *)

let x3 ctx =
  header ctx "X3" "scientific-kernel suite"
    "(extension) Livermore-style kernels in the paper's class: predicted \
     vs measured intervals, doubly verified (interpreter + OCaml)";
  let n = 96 in
  let table =
    Table.create [ "kernel"; "cells"; "predicted"; "measured"; "scheme" ]
  in
  let ok = ref true in
  List.iter
    (fun (k : Kernels.kernel) ->
      let st = Random.State.make [| 43 |] in
      let inputs =
        k.Kernels.inputs n st
        @ List.map (fun (name, v) -> (name, [ v ])) k.Kernels.scalar_inputs
      in
      let prog, cp =
        D.compile_source ~scalar_inputs:k.Kernels.scalar_inputs
          (k.Kernels.source n)
      in
      let result = D.run ~waves:8 cp ~inputs in
      D.check_against_oracle prog cp result ~inputs;
      let got =
        List.map Value.to_real (D.output_wave cp result k.Kernels.output)
      in
      List.iter2
        (fun a b -> if Float.abs (a -. b) > 1e-9 then ok := false)
        (k.Kernels.reference n inputs)
        got;
      let interval = Sim.Metrics.output_interval result k.Kernels.output in
      let predicted = k.Kernels.predicted_interval n in
      if Float.abs (interval -. predicted) /. predicted > 0.08 then
        ok := false;
      let schemes =
        String.concat "+"
          (List.sort_uniq compare (List.map snd cp.PC.cp_schemes))
      in
      Table.add_row table
        [ k.Kernels.name;
          string_of_int (Graph.node_count cp.PC.cp_graph);
          Printf.sprintf "%.3f" predicted; Printf.sprintf "%.3f" interval;
          schemes ])
    Kernels.all;
  print_table ctx table;
  verdict ctx ~ok:!ok
    "every kernel matches both oracles and its predicted interval";
  record ctx ~ok:!ok
    ~detail:
      (Printf.sprintf "%d kernels, values double-checked, intervals within 8%%"
         (List.length Kernels.all))
    "X3" "scientific-kernel suite at predicted intervals"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the toolchain itself                    *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  print_endline "\n=== toolchain micro-benchmarks (bechamel) ===";
  let open Bechamel in
  let source = Sources.figure3 62 in
  let st = Random.State.make [| 1 |] in
  let inputs =
    [ ("C", D.wave_of_floats (Sources.tame_wave st 64));
      ("B", D.wave_of_floats (Sources.tame_wave st 64)) ]
  in
  let compiled = snd (D.compile_source source) in
  let dag = Test_graphs.random_dag ~seed:1 ~layers:10 ~width:10 in
  let tests =
    Test.make_grouped ~name:"toolchain"
      [
        Test.make ~name:"compile fig3 (m=62)"
          (Staged.stage (fun () -> ignore (D.compile_source source)));
        Test.make ~name:"simulate fig3, 1 wave"
          (Staged.stage (fun () -> ignore (D.run ~waves:1 compiled ~inputs)));
        Test.make ~name:"optimal balance, 211-node DAG"
          (Staged.stage (fun () ->
               ignore (Balance.Balancer.optimal_levels dag)));
        Test.make ~name:"interpreter fig3, 1 wave"
          (Staged.stage
             (let prog = Val_lang.Parser.parse_program source in
              fun () -> ignore (D.oracle_outputs prog ~inputs)));
      ]
  in
  let cfg = Benchmark.cfg ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) ols [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some (e :: _) -> Printf.printf "  %-45s %10.3f ms/run\n" name (e /. 1e6)
      | _ -> Printf.printf "  %-45s (no estimate)\n" name)
    (List.sort compare rows)

(* The experiment index: submission order is report order and the
   canonical order of BENCH_PIPELINE.json entries.  Each entry lists the
   ids it records so the order-stability check below can assert the
   merged entry stream without caring how work was scheduled. *)
let experiments : (string list * (ctx -> unit)) list =
  [
    ([ "E1" ], e1);
    ([ "E2" ], e2);
    ([ "E3" ], e3);
    ([ "E4" ], e4);
    ([ "E5" ], e5);
    ([ "E6"; "E7" ], e6_e7);
    ([ "E8" ], e8);
    ([ "E9" ], e9);
    ([ "E10" ], e10);
    ([ "E11" ], e11);
    ([ "E12" ], e12);
    ([ "E13" ], e13);
    ([ "X1" ], x1);
    ([ "X2" ], x2);
    ([ "X3" ], x3);
  ]

let jobs_from_argv () =
  let jobs = ref None in
  let n = Array.length Sys.argv in
  for i = 1 to n - 1 do
    if Sys.argv.(i) = "--jobs" && i + 1 < n then
      jobs := int_of_string_opt Sys.argv.(i + 1)
  done;
  match !jobs with Some j when j >= 1 -> j | _ -> Exec.Pool.default_jobs ()

let () =
  print_endline
    "Reproduction harness: Dennis & Gao, 'Maximum Pipelining of Array \
     Operations on Static Data Flow Machine' (ICPP 1983)";
  let jobs = jobs_from_argv () in
  (* job-graph mode: the experiments are independent, so fan them over
     domains; merging buffers in submission order keeps the report and
     the JSON byte-identical to a sequential run *)
  let ctxs, elapsed =
    Exec.Pool.timed (fun () ->
        Exec.Pool.map ~jobs
          (fun (_ids, experiment) ->
            let ctx = new_ctx () in
            experiment ctx;
            ctx)
          experiments)
  in
  List.iter (fun ctx -> print_string (Buffer.contents ctx.buf)) ctxs;
  let failures =
    List.fold_left (fun acc ctx -> acc + ctx.ctx_failures) 0 ctxs
  in
  let entries =
    List.concat_map (fun ctx -> List.of_seq (Queue.to_seq ctx.entries)) ctxs
  in
  Printf.printf "\n%d experiments in %.2fs (%d worker%s)\n"
    (List.length experiments) elapsed jobs (if jobs = 1 then "" else "s");
  (* order stability: merged entries must follow the experiment index
     exactly, whatever the worker count *)
  let expected_ids = List.concat_map fst experiments in
  let got_ids = List.map (fun e -> e.Obs.Bench_json.id) entries in
  let order_ok = got_ids = expected_ids in
  Printf.printf "  [%s] entry order stable (%s)\n"
    (if order_ok then "PASS" else "FAIL")
    (String.concat "," got_ids);
  let failures = failures + if order_ok then 0 else 1 in
  (try micro_benchmarks ()
   with exn ->
     Printf.printf "  (micro-benchmarks skipped: %s)\n"
       (Printexc.to_string exn));
  let json_path =
    Option.value (Sys.getenv_opt "BENCH_JSON") ~default:"BENCH_PIPELINE.json"
  in
  Obs.Bench_json.write_file ~path:json_path
    ~meta:
      [ ("suite", Obs.Json.String "dennis-gao-icpp83");
        ("generated_by", Obs.Json.String "bench/main.exe") ]
    entries;
  Printf.printf "\nwrote %s (%d experiments)\n" json_path
    (List.length entries);
  Printf.printf "\n%s\n"
    (if failures = 0 then "ALL EXPERIMENTS PASS"
     else Printf.sprintf "%d EXPERIMENT(S) FAILED" failures);
  exit (if failures = 0 then 0 else 1)
