(* Large-kernel throughput stress: raw engine speed on a wide, deep
   grid of Id cells (the maximally-pipelined shape the paper's balancing
   produces), measured as firings per wall-second and output tokens per
   wall-second for each engine in both firing-rule modes.

   This is deliberately a separate executable from bench/main.exe: the
   main harness must stay byte-deterministic across hosts and worker
   counts (CI diffs its output), so nothing wall-clock-dependent can
   live there.

     stress.exe [--quick] [--json FILE] [--merge FILE]
                [--gate FILE] [--tolerance T]

   --json    write a standalone bench document of the stress entries
   --merge   splice the stress entries into an existing bench document
             (replacing previous T* entries, preserving everything else)
   --gate    after measuring, compare firings/sec against the T* entries
             of a committed baseline document: every fresh measurement
             must reach (1 - T) of the baseline's, else exit 1.
             The default tolerance 0.7 is deliberately loose — it gates
             against order-of-magnitude regressions (losing the arena
             fast path), not against host-to-host hardware variance. *)

open Dfg
module J = Obs.Json
module ME = Machine.Machine_engine

let grid ~width ~depth =
  let g = Graph.create () in
  let input = Graph.add g ~label:"in" (Opcode.Input "in") [||] in
  for w = 0 to width - 1 do
    let prev = ref input in
    for d = 0 to depth - 1 do
      let id =
        Graph.add g ~label:(Printf.sprintf "c%d_%d" w d) Opcode.Id
          [| Graph.In_arc |]
      in
      Graph.connect g ~src:!prev ~dst:id ~port:0;
      prev := id
    done;
    let out =
      Graph.add g
        ~label:(Printf.sprintf "o%d" w)
        (Opcode.Output (Printf.sprintf "o%d" w))
        [| Graph.In_arc |]
    in
    Graph.connect g ~src:!prev ~dst:out ~port:0
  done;
  g

type measurement = {
  ms_id : string;
  ms_title : string;
  ms_cells : int;
  ms_firings : int;
  ms_tokens : int;  (* output packets collected *)
  ms_wall : float;
  ms_quiescent : bool;
  ms_predicted : float;  (* pre-rewrite engine rate, firings/sec *)
  ms_factor : float;  (* required measured/predicted ratio for ok *)
}

let rate m = float_of_int m.ms_firings /. m.ms_wall
let token_rate m = float_of_int m.ms_tokens /. m.ms_wall
let ok m = m.ms_quiescent && rate m >= m.ms_factor *. m.ms_predicted

(* Pre-rewrite baselines: the last interpreted engines before the
   flat-arena rewrite, measured on the same host interleaved with the
   rewritten engines (single-vCPU container, so only interleaved A/B
   ratios are trustworthy). *)
let sim_baseline = 1.75e6
let machine_baseline = 0.65e6

let measure ~id ~title ~predicted ~factor ~run =
  let t0 = Unix.gettimeofday () in
  let cells, firings, tokens, quiescent = run () in
  let wall = Unix.gettimeofday () -. t0 in
  let m =
    { ms_id = id; ms_title = title; ms_cells = cells; ms_firings = firings;
      ms_tokens = tokens; ms_wall = wall; ms_quiescent = quiescent;
      ms_predicted = predicted; ms_factor = factor }
  in
  Printf.printf
    "  [%s] %-28s %9d cells %10d firings  %6.2fs  %10.0f firings/s  %9.0f \
     tokens/s%s\n%!"
    (if ok m then "PASS" else "FAIL")
    title cells firings wall (rate m) (token_rate m)
    (if quiescent then "" else "  (NOT QUIESCENT)");
  m

let out_tokens outputs =
  List.fold_left (fun acc (_, arrivals) -> acc + List.length arrivals) 0 outputs

let sim_run ~width ~depth ~len ~compiled () =
  let g = grid ~width ~depth in
  let inputs = [ ("in", List.init len (fun i -> Value.Int i)) ] in
  let cfg = Run_config.(default |> with_compiled compiled) in
  let r = Sim.Engine.run_cfg cfg g ~inputs in
  ( Graph.node_count g,
    Array.fold_left ( + ) 0 r.Sim.Engine.fire_counts,
    out_tokens r.Sim.Engine.outputs,
    r.Sim.Engine.quiescent )

let machine_run ~width ~depth ~len ~compiled () =
  let g = grid ~width ~depth in
  let inputs = [ ("in", List.init len (fun i -> Value.Int i)) ] in
  let cfg = Run_config.with_compiled compiled ME.default_config in
  let r = ME.run_cfg cfg ~arch:Machine.Arch.default g ~inputs in
  ( Graph.node_count g,
    r.ME.stats.ME.dispatches,
    out_tokens r.ME.outputs,
    r.ME.quiescent )

let measurements ~quick =
  (* the full sim grid is the acceptance shape: >= 1e5 cells, >= 1e7
     firings; --quick shrinks everything for smoke runs *)
  let sw, sd, sl = if quick then (200, 50, 40) else (1000, 100, 100) in
  let mw, md, ml = if quick then (50, 20, 20) else (200, 50, 50) in
  let t1 =
    measure ~id:"T1" ~title:"sim interpreted" ~predicted:sim_baseline
      ~factor:5.0
      ~run:(sim_run ~width:sw ~depth:sd ~len:sl ~compiled:false)
  in
  let t2 =
    measure ~id:"T2" ~title:"sim compiled" ~predicted:sim_baseline
      ~factor:2.0
      ~run:(sim_run ~width:sw ~depth:sd ~len:sl ~compiled:true)
  in
  let t3 =
    measure ~id:"T3" ~title:"machine interpreted"
      ~predicted:machine_baseline ~factor:0.5
      ~run:(machine_run ~width:mw ~depth:md ~len:ml ~compiled:false)
  in
  let t4 =
    measure ~id:"T4" ~title:"machine compiled" ~predicted:machine_baseline
      ~factor:0.5
      ~run:(machine_run ~width:mw ~depth:md ~len:ml ~compiled:true)
  in
  [ t1; t2; t3; t4 ]

let entry_of m =
  Obs.Bench_json.entry ~predicted:m.ms_predicted ~measured:(rate m)
    ~units:"firings/sec"
    ~detail:
      (Printf.sprintf
         "throughput stress; ok iff quiescent and >= %.1fx the pre-rewrite \
          interpreted engine"
         m.ms_factor)
    ~extra:
      [ ("cells", J.Int m.ms_cells); ("firings", J.Int m.ms_firings);
        ("tokens", J.Int m.ms_tokens);
        ("tokens_per_sec", J.Float (token_rate m));
        ("quiescent", J.Bool m.ms_quiescent) ]
    ~ok:(ok m) m.ms_id m.ms_title

let meta =
  [ ("suite", J.String "dennis-gao-icpp83");
    ("generated_by", J.String "bench/stress.exe") ]

let is_stress_id j =
  match J.get_string (J.member "id" j) with
  | Some id -> String.length id >= 1 && id.[0] = 'T'
  | None -> false

(* Splice fresh T* entries into an existing bench document, keeping the
   other experiments' entries and top-level fields intact. *)
let merge_into path ms =
  let fresh = List.map (fun m -> Obs.Bench_json.json_of_entry (entry_of m)) ms in
  let doc =
    if Sys.file_exists path then (
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      J.of_string s)
    else Obs.Bench_json.to_json ~meta []
  in
  match doc with
  | J.Obj fields ->
    let old_results =
      match J.member "results" doc with
      | J.List l -> List.filter (fun e -> not (is_stress_id e)) l
      | _ -> []
    in
    let results = old_results @ fresh in
    let failed j =
      match J.get_bool (J.member "ok" j) with Some b -> not b | None -> false
    in
    let fields =
      List.map
        (fun (k, v) ->
          match k with
          | "results" -> (k, J.List results)
          | "total" -> (k, J.Int (List.length results))
          | "failures" ->
            (k, J.Int (List.length (List.filter failed results)))
          | _ -> (k, v))
        fields
    in
    (* a fresh document from to_json ~meta [] already has all four keys *)
    J.write_file path (J.Obj fields);
    Printf.printf "merged %d stress entries into %s\n" (List.length fresh) path
  | _ -> failwith (path ^ ": not a bench document")

let gate path ~tolerance ms =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let doc = J.of_string s in
  let baseline id =
    match J.member "results" doc with
    | J.List l ->
      List.find_map
        (fun e ->
          if J.get_string (J.member "id" e) = Some id then
            J.get_float (J.member "measured" e)
          else None)
        l
    | _ -> None
  in
  let failures =
    List.filter
      (fun m ->
        match baseline m.ms_id with
        | None ->
          Printf.printf "  [gate] %s: no baseline in %s (skipped)\n" m.ms_id
            path;
          false
        | Some b ->
          let floor = (1.0 -. tolerance) *. b in
          let pass = rate m >= floor && m.ms_quiescent in
          Printf.printf
            "  [gate %s] %s: %.0f firings/s vs baseline %.0f (floor %.0f)\n"
            (if pass then "PASS" else "FAIL")
            m.ms_id (rate m) b floor;
          not pass)
      ms
  in
  if failures <> [] then (
    Printf.printf "PERF GATE FAILED: %d measurement(s) below the band\n"
      (List.length failures);
    exit 1)
  else Printf.printf "perf gate passed (tolerance %.2f)\n" tolerance

let () =
  let quick = ref false and json = ref None in
  let merge = ref None and gate_path = ref None and tolerance = ref 0.7 in
  let rec parse i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--quick" ->
        quick := true;
        parse (i + 1)
      | ("--json" | "--merge" | "--gate" | "--tolerance") as flag
        when i + 1 >= Array.length Sys.argv ->
        failwith (flag ^ " needs an argument")
      | "--json" ->
        json := Some Sys.argv.(i + 1);
        parse (i + 2)
      | "--merge" ->
        merge := Some Sys.argv.(i + 1);
        parse (i + 2)
      | "--gate" ->
        gate_path := Some Sys.argv.(i + 1);
        parse (i + 2)
      | "--tolerance" ->
        tolerance := float_of_string Sys.argv.(i + 1);
        parse (i + 2)
      | a -> failwith ("unknown argument " ^ a)
  in
  parse 1;
  Printf.printf "engine throughput stress (%s grids)\n"
    (if !quick then "quick" else "full");
  let ms = measurements ~quick:!quick in
  (match !json with
  | Some path ->
    Obs.Bench_json.write_file ~path ~meta (List.map entry_of ms);
    Printf.printf "wrote %s\n" path
  | None -> ());
  (match !merge with Some path -> merge_into path ms | None -> ());
  (match !gate_path with
  | Some path -> gate path ~tolerance:!tolerance ms
  | None -> ());
  if List.exists (fun m -> not (ok m)) ms && !gate_path = None then exit 2
